// Tensor operations. Shape-checked, Status-returning where failure is a user
// error; internal kernels use FLOR_CHECK for programmer errors.
//
// The op set is the minimum a real training loop needs: initialization,
// elementwise arithmetic, matmul, conv2d, reductions, activations, softmax /
// cross-entropy building blocks, and norms (the "gradient magnitude" probes
// of the paper's Alice scenario, §2.1).

#ifndef FLOR_TENSOR_OPS_H_
#define FLOR_TENSOR_OPS_H_

#include "common/random.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace flor {
namespace ops {

// -------------------------------------------------------- initializers ---

/// Constant fill (in place).
void Fill(Tensor* t, float v);

/// Uniform [lo, hi) fill from `rng` (in place, f32 only).
void RandUniform(Tensor* t, Rng* rng, float lo = 0.0f, float hi = 1.0f);

/// N(0, stddev) fill from `rng`.
void RandNormal(Tensor* t, Rng* rng, float stddev = 1.0f);

/// Kaiming-style init: N(0, sqrt(2 / fan_in)).
void KaimingInit(Tensor* t, Rng* rng, int64_t fan_in);

/// [0, 1, ..., n-1] as i64.
Tensor ArangeI64(int64_t n);

// -------------------------------------------------------- elementwise ----

/// out = a + b (same shape, f32).
Result<Tensor> Add(const Tensor& a, const Tensor& b);
/// out = a - b.
Result<Tensor> Sub(const Tensor& a, const Tensor& b);
/// out = a * b (elementwise).
Result<Tensor> Mul(const Tensor& a, const Tensor& b);

/// In-place axpy: y += alpha * x. Shapes must match.
Status Axpy(float alpha, const Tensor& x, Tensor* y);

/// In-place scale: t *= alpha.
void Scale(Tensor* t, float alpha);

/// out = t * alpha (new tensor).
Tensor Scaled(const Tensor& t, float alpha);

/// ReLU / derivative mask.
Tensor Relu(const Tensor& t);
Tensor ReluBackward(const Tensor& pre_activation, const Tensor& grad_out);

Tensor Tanh(const Tensor& t);
Tensor Sigmoid(const Tensor& t);

// ------------------------------------------------------------- linalg ----

/// [m,k] x [k,n] -> [m,n].
Result<Tensor> MatMul(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Result<Tensor> Transpose2D(const Tensor& t);

/// Adds a rank-1 bias [n] to every row of a rank-2 [m,n] tensor.
Result<Tensor> AddRowBias(const Tensor& t, const Tensor& bias);

/// Naive NCHW conv2d, stride 1, zero padding `pad`.
/// input [n,c,h,w], kernel [oc,c,kh,kw] -> [n,oc,h',w'].
Result<Tensor> Conv2D(const Tensor& input, const Tensor& kernel, int64_t pad);

// ---------------------------------------------------------- reductions ---

float Sum(const Tensor& t);
float Mean(const Tensor& t);
float Max(const Tensor& t);
/// L2 norm of all elements — the "magnitude" probes in the Alice scenario.
float L2Norm(const Tensor& t);

/// Row-wise argmax of a rank-2 tensor -> i64 [rows].
Result<Tensor> ArgmaxRows(const Tensor& t);

/// Row-wise softmax of a rank-2 tensor.
Result<Tensor> SoftmaxRows(const Tensor& t);

/// Mean negative log-likelihood of rows of `probs` at i64 `labels`.
Result<float> NllLoss(const Tensor& probs, const Tensor& labels);

/// Fraction of rows whose argmax equals the label.
Result<float> Accuracy(const Tensor& logits, const Tensor& labels);

}  // namespace ops
}  // namespace flor

#endif  // FLOR_TENSOR_OPS_H_
