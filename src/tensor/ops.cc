#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace flor {
namespace ops {

namespace {
Status CheckSameShapeF32(const Tensor& a, const Tensor& b) {
  if (a.dtype() != DType::kF32 || b.dtype() != DType::kF32)
    return Status::InvalidArgument("op requires f32 tensors");
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument(
        StrCat("shape mismatch: ", a.shape().ToString(), " vs ",
               b.shape().ToString()));
  }
  return Status::OK();
}
}  // namespace

void Fill(Tensor* t, float v) {
  float* p = t->f32();
  std::fill(p, p + t->numel(), v);
}

void RandUniform(Tensor* t, Rng* rng, float lo, float hi) {
  float* p = t->f32();
  for (int64_t i = 0; i < t->numel(); ++i) p[i] = rng->UniformFloat(lo, hi);
}

void RandNormal(Tensor* t, Rng* rng, float stddev) {
  float* p = t->f32();
  for (int64_t i = 0; i < t->numel(); ++i)
    p[i] = static_cast<float>(rng->NextGaussian()) * stddev;
}

void KaimingInit(Tensor* t, Rng* rng, int64_t fan_in) {
  RandNormal(t, rng, std::sqrt(2.0f / static_cast<float>(fan_in)));
}

Tensor ArangeI64(int64_t n) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = i;
  return Tensor(Shape{n}, std::move(v));
}

Result<Tensor> Add(const Tensor& a, const Tensor& b) {
  FLOR_RETURN_IF_ERROR(CheckSameShapeF32(a, b));
  Tensor out(a.shape());
  const float* pa = a.f32();
  const float* pb = b.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] + pb[i];
  return out;
}

Result<Tensor> Sub(const Tensor& a, const Tensor& b) {
  FLOR_RETURN_IF_ERROR(CheckSameShapeF32(a, b));
  Tensor out(a.shape());
  const float* pa = a.f32();
  const float* pb = b.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] - pb[i];
  return out;
}

Result<Tensor> Mul(const Tensor& a, const Tensor& b) {
  FLOR_RETURN_IF_ERROR(CheckSameShapeF32(a, b));
  Tensor out(a.shape());
  const float* pa = a.f32();
  const float* pb = b.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] * pb[i];
  return out;
}

Status Axpy(float alpha, const Tensor& x, Tensor* y) {
  FLOR_RETURN_IF_ERROR(CheckSameShapeF32(x, *y));
  const float* px = x.f32();
  float* py = y->f32();
  for (int64_t i = 0; i < x.numel(); ++i) py[i] += alpha * px[i];
  return Status::OK();
}

void Scale(Tensor* t, float alpha) {
  float* p = t->f32();
  for (int64_t i = 0; i < t->numel(); ++i) p[i] *= alpha;
}

Tensor Scaled(const Tensor& t, float alpha) {
  Tensor out = t.Clone();
  Scale(&out, alpha);
  return out;
}

Tensor Relu(const Tensor& t) {
  Tensor out(t.shape());
  const float* p = t.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < t.numel(); ++i) po[i] = p[i] > 0 ? p[i] : 0.0f;
  return out;
}

Tensor ReluBackward(const Tensor& pre_activation, const Tensor& grad_out) {
  FLOR_CHECK(pre_activation.shape() == grad_out.shape());
  Tensor out(grad_out.shape());
  const float* pre = pre_activation.f32();
  const float* g = grad_out.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < grad_out.numel(); ++i)
    po[i] = pre[i] > 0 ? g[i] : 0.0f;
  return out;
}

Tensor Tanh(const Tensor& t) {
  Tensor out(t.shape());
  const float* p = t.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < t.numel(); ++i) po[i] = std::tanh(p[i]);
  return out;
}

Tensor Sigmoid(const Tensor& t) {
  Tensor out(t.shape());
  const float* p = t.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < t.numel(); ++i)
    po[i] = 1.0f / (1.0f + std::exp(-p[i]));
  return out;
}

Result<Tensor> MatMul(const Tensor& a, const Tensor& b) {
  if (a.dtype() != DType::kF32 || b.dtype() != DType::kF32)
    return Status::InvalidArgument("matmul requires f32");
  if (a.shape().rank() != 2 || b.shape().rank() != 2)
    return Status::InvalidArgument("matmul requires rank-2 tensors");
  const int64_t m = a.shape().dim(0), k = a.shape().dim(1);
  const int64_t k2 = b.shape().dim(0), n = b.shape().dim(1);
  if (k != k2) {
    return Status::InvalidArgument(
        StrCat("matmul inner dim mismatch: ", a.shape().ToString(), " x ",
               b.shape().ToString()));
  }
  Tensor out(Shape{m, n});
  const float* pa = a.f32();
  const float* pb = b.f32();
  float* po = out.f32();
  // ikj order for cache-friendly access to b.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Result<Tensor> Transpose2D(const Tensor& t) {
  if (t.shape().rank() != 2)
    return Status::InvalidArgument("transpose2d requires rank-2");
  const int64_t m = t.shape().dim(0), n = t.shape().dim(1);
  Tensor out(Shape{n, m});
  const float* p = t.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) po[j * m + i] = p[i * n + j];
  return out;
}

Result<Tensor> AddRowBias(const Tensor& t, const Tensor& bias) {
  if (t.shape().rank() != 2 || bias.shape().rank() != 1)
    return Status::InvalidArgument("AddRowBias expects [m,n] and [n]");
  const int64_t m = t.shape().dim(0), n = t.shape().dim(1);
  if (bias.shape().dim(0) != n)
    return Status::InvalidArgument("bias length mismatch");
  Tensor out(t.shape());
  const float* p = t.f32();
  const float* pb = bias.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) po[i * n + j] = p[i * n + j] + pb[j];
  return out;
}

Result<Tensor> Conv2D(const Tensor& input, const Tensor& kernel, int64_t pad) {
  if (input.shape().rank() != 4 || kernel.shape().rank() != 4)
    return Status::InvalidArgument("conv2d expects rank-4 input and kernel");
  const int64_t n = input.shape().dim(0), c = input.shape().dim(1);
  const int64_t h = input.shape().dim(2), w = input.shape().dim(3);
  const int64_t oc = kernel.shape().dim(0), kc = kernel.shape().dim(1);
  const int64_t kh = kernel.shape().dim(2), kw = kernel.shape().dim(3);
  if (kc != c) return Status::InvalidArgument("conv2d channel mismatch");
  const int64_t oh = h + 2 * pad - kh + 1;
  const int64_t ow = w + 2 * pad - kw + 1;
  if (oh <= 0 || ow <= 0)
    return Status::InvalidArgument("conv2d output would be empty");
  Tensor out(Shape{n, oc, oh, ow});
  const float* pi = input.f32();
  const float* pk = kernel.f32();
  float* po = out.f32();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t o = 0; o < oc; ++o) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          float acc = 0.0f;
          for (int64_t ch = 0; ch < c; ++ch) {
            for (int64_t ky = 0; ky < kh; ++ky) {
              const int64_t iy = y + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t ix = x + kx - pad;
                if (ix < 0 || ix >= w) continue;
                acc += pi[((b * c + ch) * h + iy) * w + ix] *
                       pk[((o * c + ch) * kh + ky) * kw + kx];
              }
            }
          }
          po[((b * oc + o) * oh + y) * ow + x] = acc;
        }
      }
    }
  }
  return out;
}

float Sum(const Tensor& t) {
  double acc = 0;
  const float* p = t.f32();
  for (int64_t i = 0; i < t.numel(); ++i) acc += p[i];
  return static_cast<float>(acc);
}

float Mean(const Tensor& t) {
  return t.numel() == 0 ? 0.0f : Sum(t) / static_cast<float>(t.numel());
}

float Max(const Tensor& t) {
  FLOR_CHECK_GT(t.numel(), 0);
  const float* p = t.f32();
  float m = p[0];
  for (int64_t i = 1; i < t.numel(); ++i) m = std::max(m, p[i]);
  return m;
}

float L2Norm(const Tensor& t) {
  double acc = 0;
  const float* p = t.f32();
  for (int64_t i = 0; i < t.numel(); ++i)
    acc += static_cast<double>(p[i]) * p[i];
  return static_cast<float>(std::sqrt(acc));
}

Result<Tensor> ArgmaxRows(const Tensor& t) {
  if (t.shape().rank() != 2)
    return Status::InvalidArgument("ArgmaxRows requires rank-2");
  const int64_t m = t.shape().dim(0), n = t.shape().dim(1);
  std::vector<int64_t> out(static_cast<size_t>(m));
  const float* p = t.f32();
  for (int64_t i = 0; i < m; ++i) {
    int64_t best = 0;
    for (int64_t j = 1; j < n; ++j)
      if (p[i * n + j] > p[i * n + best]) best = j;
    out[static_cast<size_t>(i)] = best;
  }
  return Tensor(Shape{m}, std::move(out));
}

Result<Tensor> SoftmaxRows(const Tensor& t) {
  if (t.shape().rank() != 2)
    return Status::InvalidArgument("SoftmaxRows requires rank-2");
  const int64_t m = t.shape().dim(0), n = t.shape().dim(1);
  Tensor out(t.shape());
  const float* p = t.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < m; ++i) {
    float mx = p[i * n];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, p[i * n + j]);
    double sum = 0;
    for (int64_t j = 0; j < n; ++j) {
      po[i * n + j] = std::exp(p[i * n + j] - mx);
      sum += po[i * n + j];
    }
    for (int64_t j = 0; j < n; ++j)
      po[i * n + j] = static_cast<float>(po[i * n + j] / sum);
  }
  return out;
}

Result<float> NllLoss(const Tensor& probs, const Tensor& labels) {
  if (probs.shape().rank() != 2 || labels.dtype() != DType::kI64)
    return Status::InvalidArgument("NllLoss expects [m,n] probs, i64 labels");
  const int64_t m = probs.shape().dim(0), n = probs.shape().dim(1);
  if (labels.numel() != m)
    return Status::InvalidArgument("label count mismatch");
  double acc = 0;
  const float* p = probs.f32();
  for (int64_t i = 0; i < m; ++i) {
    int64_t y = labels.at_i64(i);
    if (y < 0 || y >= n) return Status::OutOfRange("label out of range");
    acc += -std::log(std::max(p[i * n + y], 1e-12f));
  }
  return static_cast<float>(acc / static_cast<double>(m));
}

Result<float> Accuracy(const Tensor& logits, const Tensor& labels) {
  FLOR_ASSIGN_OR_RETURN(Tensor pred, ArgmaxRows(logits));
  if (labels.numel() != pred.numel())
    return Status::InvalidArgument("label count mismatch");
  int64_t hits = 0;
  for (int64_t i = 0; i < pred.numel(); ++i)
    if (pred.at_i64(i) == labels.at_i64(i)) ++hits;
  return static_cast<float>(hits) / static_cast<float>(pred.numel());
}

}  // namespace ops
}  // namespace flor
