#include "tensor/tensor.h"

#include <cmath>
#include <cstring>

#include "common/random.h"
#include "common/strings.h"

namespace flor {

const char* DTypeName(DType t) {
  switch (t) {
    case DType::kF32:
      return "f32";
    case DType::kI64:
      return "i64";
  }
  return "?";
}

size_t DTypeSize(DType t) {
  switch (t) {
    case DType::kF32:
      return 4;
    case DType::kI64:
      return 8;
  }
  return 0;
}

Tensor::Tensor() : Tensor(Shape{}, DType::kF32) {}

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype),
      storage_(std::make_shared<Storage>()) {
  const size_t n = static_cast<size_t>(shape_.numel());
  if (dtype_ == DType::kF32) {
    storage_->f32.assign(n, 0.0f);
  } else {
    storage_->i64.assign(n, 0);
  }
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), dtype_(DType::kF32),
      storage_(std::make_shared<Storage>()) {
  FLOR_CHECK_EQ(static_cast<size_t>(shape_.numel()), values.size())
      << "shape " << shape_.ToString() << " vs " << values.size()
      << " values";
  storage_->f32 = std::move(values);
}

Tensor::Tensor(Shape shape, std::vector<int64_t> values)
    : shape_(std::move(shape)), dtype_(DType::kI64),
      storage_(std::make_shared<Storage>()) {
  FLOR_CHECK_EQ(static_cast<size_t>(shape_.numel()), values.size());
  storage_->i64 = std::move(values);
}

Tensor Tensor::Scalar(float v) { return Tensor(Shape{}, std::vector<float>{v}); }

Tensor Tensor::ScalarI64(int64_t v) {
  return Tensor(Shape{}, std::vector<int64_t>{v});
}

float* Tensor::f32() {
  FLOR_CHECK(dtype_ == DType::kF32);
  return storage_->f32.data();
}
const float* Tensor::f32() const {
  FLOR_CHECK(dtype_ == DType::kF32);
  return storage_->f32.data();
}
int64_t* Tensor::i64() {
  FLOR_CHECK(dtype_ == DType::kI64);
  return storage_->i64.data();
}
const int64_t* Tensor::i64() const {
  FLOR_CHECK(dtype_ == DType::kI64);
  return storage_->i64.data();
}

float Tensor::at(int64_t i) const {
  FLOR_CHECK(dtype_ == DType::kF32);
  FLOR_CHECK(i >= 0 && i < numel());
  return storage_->f32[static_cast<size_t>(i)];
}

int64_t Tensor::at_i64(int64_t i) const {
  FLOR_CHECK(dtype_ == DType::kI64);
  FLOR_CHECK(i >= 0 && i < numel());
  return storage_->i64[static_cast<size_t>(i)];
}

float Tensor::item() const {
  FLOR_CHECK_EQ(numel(), 1) << "item() on non-scalar " << shape_.ToString();
  return dtype_ == DType::kF32 ? storage_->f32[0]
                               : static_cast<float>(storage_->i64[0]);
}

Tensor Tensor::Clone() const {
  Tensor out(shape_, dtype_);
  out.storage_->f32 = storage_->f32;
  out.storage_->i64 = storage_->i64;
  return out;
}

bool Tensor::SharesStorageWith(const Tensor& other) const {
  return storage_ == other.storage_;
}

uint64_t Tensor::Fingerprint() const {
  uint64_t h = Mix64(static_cast<uint64_t>(dtype_) + 0x9e37);
  for (int64_t d : shape_.dims()) h = Mix64(h ^ static_cast<uint64_t>(d));
  const void* data;
  size_t bytes;
  if (dtype_ == DType::kF32) {
    data = storage_->f32.data();
    bytes = storage_->f32.size() * sizeof(float);
  } else {
    data = storage_->i64.data();
    bytes = storage_->i64.size() * sizeof(int64_t);
  }
  const auto* p = static_cast<const uint8_t*>(data);
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = Mix64(h ^ w);
  }
  uint64_t tail = 0;
  for (size_t k = 0; i < bytes; ++i, ++k) tail |= uint64_t{p[i]} << (8 * k);
  return Mix64(h ^ tail);
}

bool Tensor::Equals(const Tensor& other) const {
  if (dtype_ != other.dtype_ || shape_ != other.shape_) return false;
  if (dtype_ == DType::kF32) {
    return std::memcmp(storage_->f32.data(), other.storage_->f32.data(),
                       storage_->f32.size() * sizeof(float)) == 0;
  }
  return storage_->i64 == other.storage_->i64;
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (dtype_ != DType::kF32 || other.dtype_ != DType::kF32) {
    return Equals(other);
  }
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < storage_->f32.size(); ++i) {
    if (std::fabs(storage_->f32[i] - other.storage_->f32[i]) > tol)
      return false;
  }
  return true;
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::string s = StrCat(DTypeName(dtype_), shape_.ToString(), " {");
  const int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) s += ", ";
    s += dtype_ == DType::kF32 ? StrFormat("%g", at(i))
                               : StrCat(at_i64(i));
  }
  if (numel() > max_elems) s += ", ...";
  s += "}";
  return s;
}

}  // namespace flor
