// Cloud cost model (paper §6: P3 EC2 instances, EBS, S3).
//
// The evaluation platform: "P3.8xLarge EC2 instances with 4 Tesla V100
// GPUs ... and an EBS bandwidth of 7Gbps"; Fig. 14 compares against
// P3.2xLarge (1 GPU). Prices are the us-east-1 on-demand rates
// contemporaneous with the paper.

#ifndef FLOR_SIM_COST_MODEL_H_
#define FLOR_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "checkpoint/materializer.h"

namespace flor {
namespace sim {

/// An EC2 instance type.
struct Ec2Instance {
  const char* name;
  int gpus;
  double dollars_per_hour;
};

inline constexpr Ec2Instance kP3_2xLarge{"P3.2xLarge", 1, 3.06};
inline constexpr Ec2Instance kP3_8xLarge{"P3.8xLarge", 4, 12.24};

/// Dollar cost of running `instance` for `seconds` (billed continuously).
double InstanceCost(const Ec2Instance& instance, double seconds);

/// Default materializer throughputs for the paper's platform: EBS at
/// 7 Gbps, serialization 4.3x the I/O cost (§5.1), restore factor c = 1.38
/// (§5.3.2).
MaterializerCosts PaperPlatformCosts();

}  // namespace sim
}  // namespace flor

#endif  // FLOR_SIM_COST_MODEL_H_
