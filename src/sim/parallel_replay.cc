#include "sim/parallel_replay.h"

#include <algorithm>

#include "flor/skipblock.h"

namespace flor {
namespace sim {

Result<ClusterReplayResult> ClusterReplay(const ProgramFactory& factory,
                                          FileSystem* shared_fs,
                                          const ClusterReplayOptions&
                                              options) {
  ClusterReplayResult result;
  const int total_gpus =
      options.sample_epochs.empty() ? options.cluster.total_gpus() : 1;

  std::set<int32_t> probe_uids;
  int active = 1;
  for (int w = 0; w < active; ++w) {
    auto env = std::make_unique<Env>(std::make_unique<SimClock>(),
                                     shared_fs);
    FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());

    ReplayOptions ropts;
    ropts.run_prefix = options.run_prefix;
    ropts.init_mode = options.init_mode;
    ropts.worker_id = w;
    ropts.num_workers = total_gpus;
    ropts.sample_epochs = options.sample_epochs;
    ropts.costs = options.costs;
    ropts.run_deferred_check = false;  // merged check below

    ReplaySession session(env.get(), ropts);
    exec::Frame frame;
    FLOR_ASSIGN_OR_RETURN(ReplayResult wres,
                          session.Run(instance.program.get(), &frame));

    if (w == 0) {
      active = std::max(1, wres.active_workers);
      result.partition_segments = wres.partition_segments;
      result.effective_init = wres.effective_init;
      probe_uids = wres.probes.probe_stmt_uids;
    }
    result.worker_seconds.push_back(wres.runtime_seconds);
    for (const auto& e : wres.logs.WorkEntries())
      result.merged_logs.Append(e);
    for (const auto& e : wres.probe_entries)
      result.probe_entries.push_back(e);
    result.skipblocks.executed += wres.skipblocks.executed;
    result.skipblocks.skipped += wres.skipblocks.skipped;
    result.skipblocks.restores += wres.skipblocks.restores;
  }
  result.workers_used = active;
  result.latency_seconds =
      *std::max_element(result.worker_seconds.begin(),
                        result.worker_seconds.end());

  // Merged deferred check against the record logs.
  RunPaths paths(options.run_prefix);
  FLOR_ASSIGN_OR_RETURN(std::string log_bytes,
                        shared_fs->ReadFile(paths.Logs()));
  FLOR_ASSIGN_OR_RETURN(exec::LogStream record_logs,
                        exec::LogStream::Deserialize(log_bytes));
  result.deferred = DeferredCheck(record_logs.entries(),
                                  result.merged_logs.entries(), probe_uids);

  result.machine_usage =
      PriceCluster(options.cluster, result.worker_seconds);
  result.total_cost_dollars = TotalClusterCost(result.machine_usage);
  return result;
}

}  // namespace sim
}  // namespace flor
