#include "sim/parallel_replay.h"

#include "flor/replay_plan.h"

namespace flor {
namespace sim {

Result<ClusterReplayResult> ClusterReplay(const ProgramFactory& factory,
                                          FileSystem* shared_fs,
                                          const ClusterReplayOptions&
                                              options) {
  ClusterPlanOptions plan;
  plan.run_prefix = options.run_prefix;
  plan.num_workers =
      options.sample_epochs.empty() ? options.cluster.total_gpus() : 1;
  plan.init_mode = options.init_mode;
  plan.costs = options.costs;
  plan.sample_epochs = options.sample_epochs;
  static_cast<TierOptions&>(plan) = options;  // bucket + bloom, one slice

  FLOR_ASSIGN_OR_RETURN(const int active,
                        PlanActiveWorkers(factory, shared_fs, plan));

  // Workers are fully independent; on this single simulated host they run
  // sequentially while each accrues time on its own simulated clock.
  ReplayMerger merger;
  for (int w = 0; w < active; ++w) {
    auto env = std::make_unique<Env>(std::make_unique<SimClock>(),
                                     shared_fs);
    FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
    ReplaySession session(env.get(), WorkerReplayOptions(plan, w));
    exec::Frame frame;
    FLOR_ASSIGN_OR_RETURN(ReplayResult wres,
                          session.Run(instance.program.get(), &frame));
    merger.Add(w, std::move(wres));
  }
  ClusterReplayResult result;
  FLOR_ASSIGN_OR_RETURN(static_cast<MergedClusterReplay&>(result),
                        merger.Finish(shared_fs, options.run_prefix));

  // Simulated-cluster extras: machine billing.
  result.machine_usage =
      PriceCluster(options.cluster, result.worker_seconds);
  result.total_cost_dollars = TotalClusterCost(result.machine_usage);
  return result;
}

}  // namespace sim
}  // namespace flor
