// Deterministic *simulated* parallel-replay engine (paper §5.4.3, §5.4.4).
//
// Launches one ReplaySession per GPU worker. Workers are fully independent
// — no coordination or communication, exactly as in the paper — so on this
// simulated host they execute sequentially while each accrues time on its
// own simulated clock. Replay latency is the max over workers (plus
// nothing: there is no merge barrier in Flor; log partitions are
// concatenated by key order).
//
// Partition planning and log merging are shared with the real thread-pool
// engine (exec/replay_executor.h) via flor/replay_plan.h, so both engines
// produce byte-identical merged logs; this engine adds paper-scale latency
// modeling and cluster billing on top.
//
// The merged work-segment logs are deferred-checked against the record
// logs, so partitioned replay correctness is verified for real on every
// engine run.

#ifndef FLOR_SIM_PARALLEL_REPLAY_H_
#define FLOR_SIM_PARALLEL_REPLAY_H_

#include <string>
#include <vector>

#include "env/filesystem.h"
#include "flor/replay.h"
#include "flor/replay_plan.h"
#include "sim/cluster.h"

namespace flor {
namespace sim {

/// Engine configuration. The read-tier fields (bucket fall-through, bloom
/// filters) come from the shared TierOptions base (checkpoint/store.h) and
/// are sliced into the cluster plan, so every worker's store sees them.
struct ClusterReplayOptions : TierOptions {
  std::string run_prefix = "run";
  Cluster cluster;
  InitMode init_mode = InitMode::kStrong;
  MaterializerCosts costs;
  /// Optional iteration sampling (single worker) instead of partitioning.
  std::vector<int64_t> sample_epochs;
};

/// Aggregate outcome of a cluster replay: the engine-agnostic merge
/// (latency, merged logs, deferred check — flor/replay_plan.h) plus
/// simulated-cluster billing.
struct ClusterReplayResult : MergedClusterReplay {
  /// Machine billing.
  std::vector<MachineUsage> machine_usage;
  double total_cost_dollars = 0;
};

/// Runs a parallel replay of the record run at `run_prefix` (stored on
/// `shared_fs`). `factory` rebuilds the *current* (possibly probed) program
/// for each worker.
Result<ClusterReplayResult> ClusterReplay(const ProgramFactory& factory,
                                          FileSystem* shared_fs,
                                          const ClusterReplayOptions&
                                              options);

}  // namespace sim
}  // namespace flor

#endif  // FLOR_SIM_PARALLEL_REPLAY_H_
