#include "sim/cost_model.h"

namespace flor {
namespace sim {

double InstanceCost(const Ec2Instance& instance, double seconds) {
  return instance.dollars_per_hour * seconds / 3600.0;
}

MaterializerCosts PaperPlatformCosts() {
  MaterializerCosts costs;
  costs.io_bps = 875e6;              // EBS 7 Gbps
  costs.serialize_bps = 875e6 / 4.3; // serialization 4.3x I/O cost
  costs.snapshot_bps = 4.0e9;        // COW copy at memcpy speed
  costs.plasma_copy_bps = 3.0e9;
  costs.plasma_per_object_s = 5e-7;
  costs.fork_batch_overhead_s = 0.004;
  costs.restore_factor = 1.38;       // measured average c (paper §5.3.2)
  return costs;
}

}  // namespace sim
}  // namespace flor
