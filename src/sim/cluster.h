// Cluster description for parallel replay experiments.

#ifndef FLOR_SIM_CLUSTER_H_
#define FLOR_SIM_CLUSTER_H_

#include <string>
#include <vector>

#include "sim/cost_model.h"

namespace flor {
namespace sim {

/// A homogeneous pool of GPU machines.
struct Cluster {
  Ec2Instance instance = kP3_8xLarge;
  int num_machines = 1;

  int total_gpus() const { return instance.gpus * num_machines; }
};

/// Per-machine accounting after a parallel replay.
struct MachineUsage {
  int machine_id = 0;
  double busy_seconds = 0;  ///< wall time = max over its workers
  double cost_dollars = 0;
};

/// Assigns worker wall-times to machines (workers fill machines in order)
/// and prices each machine for its busy span.
std::vector<MachineUsage> PriceCluster(const Cluster& cluster,
                                       const std::vector<double>&
                                           worker_seconds);

/// Total dollars across machines.
double TotalClusterCost(const std::vector<MachineUsage>& usage);

}  // namespace sim
}  // namespace flor

#endif  // FLOR_SIM_CLUSTER_H_
