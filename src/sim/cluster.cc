#include "sim/cluster.h"

#include <algorithm>

namespace flor {
namespace sim {

std::vector<MachineUsage> PriceCluster(
    const Cluster& cluster, const std::vector<double>& worker_seconds) {
  std::vector<MachineUsage> usage;
  const int per_machine = cluster.instance.gpus;
  for (int m = 0; m < cluster.num_machines; ++m) {
    MachineUsage mu;
    mu.machine_id = m;
    const size_t begin = static_cast<size_t>(m) * per_machine;
    for (size_t w = begin;
         w < begin + static_cast<size_t>(per_machine) &&
         w < worker_seconds.size();
         ++w) {
      mu.busy_seconds = std::max(mu.busy_seconds, worker_seconds[w]);
    }
    mu.cost_dollars = InstanceCost(cluster.instance, mu.busy_seconds);
    if (mu.busy_seconds > 0) usage.push_back(mu);
  }
  return usage;
}

double TotalClusterCost(const std::vector<MachineUsage>& usage) {
  double total = 0;
  for (const auto& mu : usage) total += mu.cost_dollars;
  return total;
}

}  // namespace sim
}  // namespace flor
