// Checkpoint store and record manifest.
//
// The store lays checkpoints out under a filesystem prefix; the manifest is
// the record-session index replay needs: which loop executions have
// checkpoints, their sizes, and the adaptive controller's bookkeeping
// (execution counts, refined c estimate).

#ifndef FLOR_CHECKPOINT_STORE_H_
#define FLOR_CHECKPOINT_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "env/filesystem.h"

namespace flor {

/// One materialized checkpoint, as recorded in the manifest.
struct CheckpointRecord {
  CheckpointKey key;
  int64_t epoch = -1;             ///< main-loop iteration index, -1 if n/a
  uint64_t raw_bytes = 0;         ///< uncompressed snapshot bytes (actual)
  uint64_t stored_bytes = 0;      ///< on-disk bytes (actual)
  uint64_t nominal_raw_bytes = 0; ///< profile-scaled raw size (sim)
  double materialize_seconds = 0; ///< background serialize+write time
};

/// Record-session index.
struct Manifest {
  std::string workload;
  double record_runtime_seconds = 0;   ///< wall/sim time of the record run
  double vanilla_runtime_seconds = 0;  ///< same run without checkpointing
  double c_estimate = 1.0;             ///< refined restore/materialize ratio
  /// Per-loop execution counts at end of record (loop id -> ni).
  std::map<int32_t, int64_t> loop_executions;
  std::vector<CheckpointRecord> records;

  /// Sorted main-loop epochs that have a checkpoint for `loop_id`.
  std::vector<int64_t> EpochsWithCheckpoint(int32_t loop_id) const;

  /// Sum of stored_bytes.
  uint64_t TotalStoredBytes() const;
  /// Sum of nominal_raw_bytes (falls back to raw_bytes when nominal is 0).
  uint64_t TotalNominalBytes() const;

  std::string Serialize() const;
  static Result<Manifest> Deserialize(const std::string& data);
};

/// Filesystem-backed checkpoint storage under a prefix.
class CheckpointStore {
 public:
  /// Does not own `fs`. Typical prefix: "run1/ckpt".
  CheckpointStore(FileSystem* fs, std::string prefix);

  /// Writes encoded checkpoint bytes for `key`.
  Status PutBytes(const CheckpointKey& key, const std::string& bytes);

  Result<std::string> GetBytes(const CheckpointKey& key) const;

  /// Decoded convenience read.
  Result<NamedSnapshots> Get(const CheckpointKey& key) const;

  bool Exists(const CheckpointKey& key) const;

  /// Total bytes stored under this prefix.
  uint64_t TotalBytes() const;

  const std::string& prefix() const { return prefix_; }
  FileSystem* fs() const { return fs_; }

 private:
  std::string PathFor(const CheckpointKey& key) const;

  FileSystem* fs_;
  std::string prefix_;
};

}  // namespace flor

#endif  // FLOR_CHECKPOINT_STORE_H_
