// Checkpoint store and record manifest.
//
// The store is a facade over per-shard object stores: a ShardRouter places
// each checkpoint key deterministically on one of N shard prefixes, and
// each shard serializes its own writers with a private lock, so the
// background materializer and multi-worker replay engines stop contending
// on one namespace. A single-shard store (the default) lays objects out
// exactly like the pre-sharding flat namespace, so old record runs keep
// replaying. The manifest is the record-session index replay needs: which
// loop executions have checkpoints, their sizes and shard placement, and
// the adaptive controller's bookkeeping (execution counts, refined c
// estimate).

#ifndef FLOR_CHECKPOINT_STORE_H_
#define FLOR_CHECKPOINT_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "checkpoint/shard.h"
#include "common/bloom.h"
#include "env/filesystem.h"

namespace flor {

/// Joins an object-store prefix and a relative path with exactly one '/',
/// regardless of trailing slashes on `prefix` or leading slashes on `rel`.
/// Every bucket/spool path in the system goes through this helper so the
/// local shard layout and its bucket mirror stay byte-identical.
std::string JoinObjectPath(const std::string& prefix,
                           const std::string& rel);

/// One materialized checkpoint, as recorded in the manifest.
struct CheckpointRecord {
  CheckpointKey key;
  int64_t epoch = -1;             ///< main-loop iteration index, -1 if n/a
  uint64_t raw_bytes = 0;         ///< uncompressed snapshot bytes (actual)
  uint64_t stored_bytes = 0;      ///< on-disk bytes (actual)
  uint64_t nominal_raw_bytes = 0; ///< profile-scaled raw size (sim)
  double materialize_seconds = 0; ///< background serialize+write time
  int shard = 0;                  ///< shard prefix holding the object
};

/// Record-session index.
struct Manifest {
  std::string workload;
  double record_runtime_seconds = 0;   ///< wall/sim time of the record run
  double vanilla_runtime_seconds = 0;  ///< same run without checkpointing
  double c_estimate = 1.0;             ///< refined restore/materialize ratio
  /// Shard count of the run's checkpoint store. Manifests written before
  /// sharding carry no shard fields and deserialize as shard count 1.
  int shard_count = 1;
  /// Per-loop execution counts at end of record (loop id -> ni).
  std::map<int32_t, int64_t> loop_executions;
  std::vector<CheckpointRecord> records;

  /// Sorted main-loop epochs that have a checkpoint for `loop_id`.
  std::vector<int64_t> EpochsWithCheckpoint(int32_t loop_id) const;

  /// Sum of stored_bytes.
  uint64_t TotalStoredBytes() const;
  /// Sum of nominal_raw_bytes (falls back to raw_bytes when nominal is 0).
  uint64_t TotalNominalBytes() const;

  /// At shard count 1 the output is byte-identical to the pre-sharding
  /// format (no shard fields); otherwise a `shards` line and a per-record
  /// shard column are appended.
  std::string Serialize() const;

  /// Strict parse: any malformed, truncated, or non-numeric field returns
  /// Status::Corruption — never a crash or a silently defaulted value.
  static Result<Manifest> Deserialize(const std::string& data);
};

/// Per-shard write accounting (objects/bytes that went through PutBytes).
struct ShardWriteStats {
  int64_t objects = 0;
  uint64_t bytes = 0;
};

/// Read-side accounting for the bucket tier and the bloom accelerator.
struct TierStats {
  int64_t bucket_faults = 0;        ///< reads served from the bucket
  int64_t rehydrated_objects = 0;   ///< bucket reads written back locally
  int64_t rehydrate_failures = 0;   ///< write-backs that failed (non-fatal)
  /// Lookups the bloom filter answered definite-miss without touching any
  /// tier (Exists / GetBytes / Get short-circuits).
  int64_t bloom_skipped_probes = 0;
  /// Lookups the filter passed as maybe-present that turned out NotFound in
  /// every tier. Observed FPR over absent keys is
  /// false_positives / (false_positives + skipped_probes).
  int64_t bloom_false_positives = 0;
};

/// Read-tier selection shared by every replay entry point (ReplayOptions
/// and the three engine option structs inherit it) and by the service
/// ConnectionOptions: which bucket mirror, if any, backs local misses, and
/// whether the store fronts its shards with manifest-seeded bloom filters.
/// Declaring the fields once here is what keeps the four entry-point
/// structs from drifting apart again.
struct TierOptions {
  /// Bucket tier of the run's checkpoint store (the spool mirror prefix).
  /// Non-empty makes reads survive aggressive local GC: a local miss falls
  /// through to the bucket instead of failing. Empty: local tier only.
  std::string bucket_prefix;
  /// Write bucket fault-ins back to the local shard (under its writer
  /// lock) so repeated reads stay fast.
  bool bucket_rehydrate = true;
  /// Attach per-shard bloom filters to the store, seeded from the record
  /// manifest, so existence checks on absent keys answer definite-miss
  /// without probing any tier. Off by default: the filterless store is the
  /// pinned-byte-identical baseline.
  bool bloom_filter = false;
  /// Target false-positive rate of those filters.
  double bloom_target_fpr = 0.01;
};

/// Sizing knobs for the store's per-shard bloom filters (EnableBloom).
struct BloomOptions {
  /// Expected live keys per shard; the filter degrades (higher FPR, never
  /// false negatives) past this load.
  int64_t expected_keys_per_shard = 4096;
  /// Target false-positive rate at the expected load.
  double target_fpr = 0.01;
};

/// Filesystem-backed checkpoint storage: a facade routing each key onto one
/// of `num_shards` per-shard stores under a common prefix, with an optional
/// read-through bucket tier mirroring the same shard layout (the mirror
/// SpoolStore / the record session's spool queue write).
///
/// Thread-safe: writes serialize per shard (not globally), reads go
/// straight to the (thread-safe) FileSystem without taking shard locks, so
/// concurrent replay workers never contend with each other or with the
/// background materializer unless they hit the same shard's writer. A
/// bucket fault-in that re-hydrates the local shard takes that shard's
/// writer lock, like any other write.
class CheckpointStore {
 public:
  /// Does not own `fs`. Typical prefix: "run1/ckpt". `num_shards` == 1
  /// reproduces the legacy flat layout.
  CheckpointStore(FileSystem* fs, std::string prefix, int num_shards = 1);

  /// The sanctioned way to open a store: one call that applies the whole
  /// tier configuration — shard count from `manifest` when provided (so the
  /// layout always matches what record wrote), bucket attached, bloom
  /// filters sized for the manifest's record count and seeded from it.
  /// Replay sessions, GC passes, and the service Connection all open
  /// stores through here; scripts/check.sh lints src/ against direct
  /// construction so new code cannot drift from the tier configuration.
  /// `num_shards` is only consulted when `manifest` is null (a store for a
  /// run still being written).
  static std::unique_ptr<CheckpointStore> Open(FileSystem* fs,
                                               const std::string& prefix,
                                               const TierOptions& tier,
                                               const Manifest* manifest,
                                               int num_shards = 1);

  /// Attaches the bucket tier: reads that miss locally fall through to the
  /// mirror of this store's layout under `bucket_prefix` (objects live at
  /// JoinObjectPath(bucket_prefix, PathFor(key))). With
  /// `rehydrate_on_fault`, a successful bucket read is written back to the
  /// local shard under its writer lock so repeated restores stay fast; a
  /// write-back racing local GC merely resurrects an orphan, which the
  /// reconciliation sweep reclaims. Empty `bucket_prefix` detaches.
  void AttachBucket(std::string bucket_prefix, bool rehydrate_on_fault =
                                                   true);
  bool has_bucket() const { return !bucket_prefix_.empty(); }
  const std::string& bucket_prefix() const { return bucket_prefix_; }

  /// Attaches one bloom filter per shard (sized by `options`) so Exists and
  /// Get/GetBytes answer definite-miss without probing any tier. Keys
  /// written through PutBytes are added automatically; keys that already
  /// exist (a store opened over a finished record run) must be seeded with
  /// SeedBloomFromManifest or the filter would wrongly rule them absent.
  /// Deletes leave filter bits set — the filter tracks a superset of live
  /// keys, so a deleted key degrades to a (counted) false positive, never a
  /// false negative. Call before concurrent use, like AttachBucket.
  void EnableBloom(const BloomOptions& options = BloomOptions());
  bool bloom_enabled() const { return !filters_.empty(); }

  /// Adds every manifest record's key to its shard's filter (requires
  /// EnableBloom). Rebuilding from the manifest is the recovery story: the
  /// filter is in-memory only, so a store opened on an existing run seeds
  /// from the same index replay plans from.
  void SeedBloomFromManifest(const Manifest& manifest);

  /// Writes encoded checkpoint bytes for `key` on its shard.
  Status PutBytes(const CheckpointKey& key, const std::string& bytes);

  /// Reads `key`, falling through to the bucket tier on a local NotFound.
  /// A miss in *both* tiers returns NotFound naming the key and the paths
  /// probed. `from_bucket`, when non-null, reports which tier served the
  /// read.
  Result<std::string> GetBytes(const CheckpointKey& key,
                               bool* from_bucket = nullptr) const;

  /// Decoded convenience read (same tier fall-through as GetBytes).
  Result<NamedSnapshots> Get(const CheckpointKey& key,
                             bool* from_bucket = nullptr) const;

  /// True when `key` is readable through *any* tier.
  bool Exists(const CheckpointKey& key) const;

  /// Deletes `key`'s object on its shard (same per-shard writer lock as
  /// PutBytes — retirement never races a materializer on the same shard).
  /// NotFound when the object is already gone. Local tier only: the bucket
  /// copy, if any, is untouched.
  Status DeleteObject(const CheckpointKey& key);

  /// Deletes an arbitrary object path belonging to `shard` (local or
  /// bucket tier) under that shard's writer lock. This is the reclamation
  /// primitive for GC and orphan sweeps, which delete by listed path
  /// rather than by key.
  Status DeleteShardPath(int shard, const std::string& path);

  /// Total bytes currently stored across all shards (local tier).
  uint64_t TotalBytes() const;

  /// Shard index `key` routes to.
  int ShardOf(const CheckpointKey& key) const {
    return router_.ShardOf(key);
  }

  /// Object path for `key` (shard-aware).
  std::string PathFor(const CheckpointKey& key) const {
    return router_.PathFor(prefix_, key);
  }

  /// Filesystem prefix of one shard.
  std::string ShardPrefix(int shard) const {
    return router_.ShardPrefix(prefix_, shard);
  }

  /// Bucket-tier object path for `key` (requires has_bucket()).
  std::string BucketPathFor(const CheckpointKey& key) const {
    return JoinObjectPath(bucket_prefix_, PathFor(key));
  }

  /// Bucket-tier prefix of one shard (requires has_bucket()).
  std::string BucketShardPrefix(int shard) const {
    return JoinObjectPath(bucket_prefix_, ShardPrefix(shard));
  }

  /// Snapshot of per-shard write counters, indexed by shard.
  std::vector<ShardWriteStats> WriteStatsByShard() const;

  /// Snapshot of bucket-tier read counters.
  TierStats tier_stats() const;

  int num_shards() const { return router_.num_shards(); }
  const ShardRouter& router() const { return router_; }
  const std::string& prefix() const { return prefix_; }
  FileSystem* fs() const { return fs_; }

 private:
  /// One shard: its writer lock and write accounting. The lock scopes
  /// write-side critical sections to a single shard so writers on distinct
  /// shards proceed in parallel.
  struct Shard {
    mutable std::mutex mu;
    ShardWriteStats stats;
  };

  FileSystem* fs_;
  std::string prefix_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// True when the bloom filter rules `key` definitely absent (and counts
  /// the skipped probe); false when filtering is off or the key may exist.
  bool BloomRulesAbsent(const CheckpointKey& key) const;

  /// Bucket tier. Empty prefix means no bucket attached. Counters are
  /// atomics so the read path stays lock-free.
  std::string bucket_prefix_;
  bool rehydrate_on_fault_ = true;
  mutable std::atomic<int64_t> bucket_faults_{0};
  mutable std::atomic<int64_t> rehydrated_objects_{0};
  mutable std::atomic<int64_t> rehydrate_failures_{0};

  /// Per-shard bloom filters; empty when EnableBloom was never called.
  /// Filter bits are internally atomic, so the lock-free read path stays
  /// lock-free.
  std::vector<std::unique_ptr<BloomFilter>> filters_;
  mutable std::atomic<int64_t> bloom_skipped_probes_{0};
  mutable std::atomic<int64_t> bloom_false_positives_{0};
};

}  // namespace flor

#endif  // FLOR_CHECKPOINT_STORE_H_
