#include "checkpoint/gc.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

namespace flor {

namespace {

/// True when `rec` is an epoch-level checkpoint — its ctx is a single
/// "e=N" segment, i.e. a direct child of the main loop. Init-mode restore
/// only ever targets these (restoring an epoch-level loop *skips* its
/// body, so deeper nested loops are never entered during init), which is
/// why epoch pins protect exactly this class of records.
bool IsEpochLevel(const CheckpointRecord& rec) {
  return rec.key.ctx.find('/') == std::string::npos;
}

}  // namespace

std::vector<size_t> PlanRetirement(const Manifest& manifest,
                                   const GcPolicy& policy) {
  std::vector<size_t> retire;
  if (policy.keep_last_k <= 0) return retire;

  const std::set<int64_t> pinned(policy.pinned_epochs.begin(),
                                 policy.pinned_epochs.end());

  // Distinct epoch timeline per loop (nested loops checkpoint several ctx
  // levels per epoch; recency is per *epoch*, not per record).
  std::map<int32_t, std::set<int64_t>> epochs_by_loop;
  for (const auto& rec : manifest.records) {
    if (rec.epoch >= 0) epochs_by_loop[rec.key.loop_id].insert(rec.epoch);
  }

  // Keep set per loop: the K most recent epochs. Pins are applied per
  // record below — only to epoch-level records, the init-restore targets;
  // pinning them into every loop's keep-set here would keep nested-loop
  // checkpoints at pinned epochs forever.
  std::map<int32_t, std::set<int64_t>> keep_by_loop;
  for (const auto& [loop_id, epochs] : epochs_by_loop) {
    std::set<int64_t>& keep = keep_by_loop[loop_id];
    auto it = epochs.rbegin();
    for (int64_t k = 0; k < policy.keep_last_k && it != epochs.rend();
         ++k, ++it) {
      keep.insert(*it);
    }
  }

  for (size_t i = 0; i < manifest.records.size(); ++i) {
    const CheckpointRecord& rec = manifest.records[i];
    if (rec.epoch < 0) continue;  // not on the epoch timeline: eternal
    if (keep_by_loop[rec.key.loop_id].count(rec.epoch)) continue;
    if (IsEpochLevel(rec) && pinned.count(rec.epoch)) continue;
    retire.push_back(i);
  }
  return retire;
}

Result<GcReport> RetireCheckpoints(CheckpointStore* store,
                                   Manifest* manifest,
                                   const std::string& manifest_path,
                                   const GcPolicy& policy) {
  GcReport report;
  report.shards.resize(static_cast<size_t>(store->num_shards()));

  const std::vector<size_t> retire = PlanRetirement(*manifest, policy);
  if (retire.empty()) {
    // Guaranteed no-op: no manifest rewrite, no deletes, store untouched.
    report.surviving_records =
        static_cast<int64_t>(manifest->records.size());
    return report;
  }

  // Group the retire set by shard up front (planning is manifest-only; the
  // store is never listed or scanned).
  std::vector<std::vector<CheckpointRecord>> by_shard(
      static_cast<size_t>(store->num_shards()));
  for (size_t idx : retire) {
    const CheckpointRecord& rec = manifest->records[idx];
    by_shard[static_cast<size_t>(rec.shard)].push_back(rec);
  }

  if (store->has_bucket()) {
    // Demotion: the bucket mirror keeps every retired record readable, so
    // the manifest stays intact and only local copies are reclaimed.
    // Objects the bucket does not hold (unspooled, or the spool failed)
    // are skipped — demotion never makes a record unreadable.
    report.demoted_to_bucket = true;
    report.surviving_records =
        static_cast<int64_t>(manifest->records.size());
    for (int shard = 0; shard < store->num_shards(); ++shard) {
      GcShardStats& stats = report.shards[static_cast<size_t>(shard)];
      for (const CheckpointRecord& rec :
           by_shard[static_cast<size_t>(shard)]) {
        if (!store->fs()->Exists(store->BucketPathFor(rec.key))) {
          ++stats.skipped_unspooled;
          continue;
        }
        Status s = store->DeleteObject(rec.key);
        if (s.ok()) {
          ++stats.retired_objects;
          stats.retired_bytes += rec.stored_bytes;
        } else if (s.IsNotFound()) {
          ++stats.already_absent;
        } else {
          ++stats.failed_deletes;
        }
      }
    }
    return report;
  }

  // Prune the manifest and persist it FIRST: from this atomic write on, no
  // replay plan can reference a retired epoch. If the persist fails, the
  // in-memory manifest is restored and nothing is deleted.
  std::vector<CheckpointRecord> pruned;
  pruned.reserve(manifest->records.size() - retire.size());
  {
    std::set<size_t> retire_set(retire.begin(), retire.end());
    for (size_t i = 0; i < manifest->records.size(); ++i) {
      if (!retire_set.count(i)) pruned.push_back(manifest->records[i]);
    }
  }
  std::vector<CheckpointRecord> original = std::move(manifest->records);
  manifest->records = std::move(pruned);
  Status persisted =
      store->fs()->WriteFile(manifest_path, manifest->Serialize());
  if (!persisted.ok()) {
    manifest->records = std::move(original);
    return persisted;
  }
  report.manifest_rewritten = true;
  report.surviving_records = static_cast<int64_t>(manifest->records.size());

  // Delete the retired objects shard by shard. Each delete goes through
  // the shard's writer lock, so a concurrent materializer on another shard
  // never contends with retirement here. Failures leak an orphan (the
  // manifest already dropped the record) — reported, never fatal.
  for (int shard = 0; shard < store->num_shards(); ++shard) {
    GcShardStats& stats = report.shards[static_cast<size_t>(shard)];
    for (const CheckpointRecord& rec : by_shard[static_cast<size_t>(shard)]) {
      Status s = store->DeleteObject(rec.key);
      if (s.ok()) {
        ++stats.retired_objects;
        stats.retired_bytes += rec.stored_bytes;
      } else if (s.IsNotFound()) {
        ++stats.already_absent;
      } else {
        ++stats.failed_deletes;
      }
    }
  }
  return report;
}

Result<GcReport> RetireBucketCheckpoints(CheckpointStore* store,
                                         Manifest* manifest,
                                         const std::string& manifest_path,
                                         const BucketGcPolicy& policy) {
  if (!store->has_bucket()) {
    return Status::InvalidArgument(
        "bucket retirement requires a store with a bucket tier attached");
  }
  GcReport report;
  report.shards.resize(static_cast<size_t>(store->num_shards()));

  GcPolicy local_shape;
  local_shape.keep_last_k = policy.keep_last_k;
  local_shape.pinned_epochs = policy.pinned_epochs;
  const std::vector<size_t> retire = PlanRetirement(*manifest, local_shape);
  if (retire.empty()) {
    report.surviving_records =
        static_cast<int64_t>(manifest->records.size());
    return report;
  }

  std::vector<std::vector<CheckpointRecord>> by_shard(
      static_cast<size_t>(store->num_shards()));
  for (size_t idx : retire) {
    const CheckpointRecord& rec = manifest->records[idx];
    by_shard[static_cast<size_t>(rec.shard)].push_back(rec);
  }

  // Same ordering contract as the local tier: the pruned manifest lands
  // first (one atomic WriteFile), deletes follow. A crash mid-delete
  // leaves orphans in either tier, never a dangling record.
  std::vector<CheckpointRecord> pruned;
  pruned.reserve(manifest->records.size() - retire.size());
  {
    std::set<size_t> retire_set(retire.begin(), retire.end());
    for (size_t i = 0; i < manifest->records.size(); ++i) {
      if (!retire_set.count(i)) pruned.push_back(manifest->records[i]);
    }
  }
  std::vector<CheckpointRecord> original = std::move(manifest->records);
  manifest->records = std::move(pruned);
  Status persisted =
      store->fs()->WriteFile(manifest_path, manifest->Serialize());
  if (!persisted.ok()) {
    manifest->records = std::move(original);
    return persisted;
  }
  report.manifest_rewritten = true;
  report.surviving_records = static_cast<int64_t>(manifest->records.size());

  // Per record, reclaim both tiers: the bucket object and any local copy
  // demotion has not yet removed. A hard failure on either tier leaks an
  // orphan for the reconciliation sweep; both tiers already gone means a
  // prior pass (or crash) got here first.
  for (int shard = 0; shard < store->num_shards(); ++shard) {
    GcShardStats& stats = report.shards[static_cast<size_t>(shard)];
    for (const CheckpointRecord& rec :
         by_shard[static_cast<size_t>(shard)]) {
      Status bucket =
          store->DeleteShardPath(rec.shard, store->BucketPathFor(rec.key));
      Status local = store->DeleteObject(rec.key);
      if ((!bucket.ok() && !bucket.IsNotFound()) ||
          (!local.ok() && !local.IsNotFound())) {
        ++stats.failed_deletes;
      } else if (bucket.IsNotFound() && local.IsNotFound()) {
        ++stats.already_absent;
      } else {
        ++stats.retired_objects;
        stats.retired_bytes += rec.stored_bytes;
      }
    }
  }
  return report;
}

ReconcileReport ReconcileOrphans(CheckpointStore* store,
                                 const Manifest& manifest) {
  ReconcileReport report;
  report.shards.resize(static_cast<size_t>(store->num_shards()));

  // Every path a manifest record is allowed to occupy, in either tier.
  std::unordered_set<std::string> referenced;
  referenced.reserve(manifest.records.size() * 2);
  for (const auto& rec : manifest.records) {
    referenced.insert(store->PathFor(rec.key));
    if (store->has_bucket()) referenced.insert(store->BucketPathFor(rec.key));
  }

  // Shard prefixes partition both namespaces, so per-shard listings cover
  // every object exactly once.
  for (int shard = 0; shard < store->num_shards(); ++shard) {
    ReconcileShardStats& stats = report.shards[static_cast<size_t>(shard)];
    auto sweep = [&](const std::string& prefix, int64_t* orphans,
                     uint64_t* orphan_bytes) {
      for (const std::string& path :
           store->fs()->ListPrefix(prefix + "/")) {
        if (referenced.count(path)) continue;
        auto size = store->fs()->FileSize(path);
        if (!store->DeleteShardPath(shard, path).ok()) {
          ++stats.failed_deletes;
          continue;
        }
        ++*orphans;
        if (size.ok()) *orphan_bytes += *size;
      }
    };
    sweep(store->ShardPrefix(shard), &stats.local_orphans,
          &stats.local_orphan_bytes);
    if (store->has_bucket()) {
      sweep(store->BucketShardPrefix(shard), &stats.bucket_orphans,
            &stats.bucket_orphan_bytes);
    }
  }
  return report;
}

Result<GcReport> RetireRun(FileSystem* fs, const std::string& manifest_path,
                           const std::string& ckpt_prefix,
                           const GcPolicy& policy,
                           const std::string& bucket_prefix) {
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        fs->ReadFile(manifest_path));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  TierOptions tier;
  tier.bucket_prefix = bucket_prefix;
  auto store = CheckpointStore::Open(fs, ckpt_prefix, tier, &manifest);
  return RetireCheckpoints(store.get(), &manifest, manifest_path, policy);
}

Result<GcReport> RetireBucketRun(FileSystem* fs,
                                 const std::string& manifest_path,
                                 const std::string& ckpt_prefix,
                                 const std::string& bucket_prefix,
                                 const BucketGcPolicy& policy) {
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        fs->ReadFile(manifest_path));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  TierOptions tier;
  tier.bucket_prefix = bucket_prefix;
  auto store = CheckpointStore::Open(fs, ckpt_prefix, tier, &manifest);
  return RetireBucketCheckpoints(store.get(), &manifest, manifest_path,
                                 policy);
}

Result<ReconcileReport> ReconcileRun(FileSystem* fs,
                                     const std::string& manifest_path,
                                     const std::string& ckpt_prefix,
                                     const std::string& bucket_prefix) {
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        fs->ReadFile(manifest_path));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  TierOptions tier;
  tier.bucket_prefix = bucket_prefix;
  auto store = CheckpointStore::Open(fs, ckpt_prefix, tier, &manifest);
  return ReconcileOrphans(store.get(), manifest);
}

}  // namespace flor
