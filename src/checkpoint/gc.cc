#include "checkpoint/gc.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace flor {

std::vector<size_t> PlanRetirement(const Manifest& manifest,
                                   const GcPolicy& policy) {
  std::vector<size_t> retire;
  if (policy.keep_last_k <= 0) return retire;

  const std::set<int64_t> pinned(policy.pinned_epochs.begin(),
                                 policy.pinned_epochs.end());

  // Distinct epoch timeline per loop (nested loops checkpoint several ctx
  // levels per epoch; recency is per *epoch*, not per record).
  std::map<int32_t, std::set<int64_t>> epochs_by_loop;
  for (const auto& rec : manifest.records) {
    if (rec.epoch >= 0) epochs_by_loop[rec.key.loop_id].insert(rec.epoch);
  }

  // Keep set per loop: the K most recent epochs plus every pinned one.
  std::map<int32_t, std::set<int64_t>> keep_by_loop;
  for (const auto& [loop_id, epochs] : epochs_by_loop) {
    std::set<int64_t>& keep = keep_by_loop[loop_id];
    auto it = epochs.rbegin();
    for (int64_t k = 0; k < policy.keep_last_k && it != epochs.rend();
         ++k, ++it) {
      keep.insert(*it);
    }
    for (int64_t e : epochs) {
      if (pinned.count(e)) keep.insert(e);
    }
  }

  for (size_t i = 0; i < manifest.records.size(); ++i) {
    const CheckpointRecord& rec = manifest.records[i];
    if (rec.epoch < 0) continue;  // not on the epoch timeline: eternal
    if (!keep_by_loop[rec.key.loop_id].count(rec.epoch)) retire.push_back(i);
  }
  return retire;
}

Result<GcReport> RetireCheckpoints(CheckpointStore* store,
                                   Manifest* manifest,
                                   const std::string& manifest_path,
                                   const GcPolicy& policy) {
  GcReport report;
  report.shards.resize(static_cast<size_t>(store->num_shards()));

  const std::vector<size_t> retire = PlanRetirement(*manifest, policy);
  if (retire.empty()) {
    // Guaranteed no-op: no manifest rewrite, no deletes, store untouched.
    report.surviving_records =
        static_cast<int64_t>(manifest->records.size());
    return report;
  }

  // Group the retire set by shard up front (planning is manifest-only; the
  // store is never listed or scanned).
  std::vector<std::vector<CheckpointRecord>> by_shard(
      static_cast<size_t>(store->num_shards()));
  for (size_t idx : retire) {
    const CheckpointRecord& rec = manifest->records[idx];
    by_shard[static_cast<size_t>(rec.shard)].push_back(rec);
  }

  // Prune the manifest and persist it FIRST: from this atomic write on, no
  // replay plan can reference a retired epoch. If the persist fails, the
  // in-memory manifest is restored and nothing is deleted.
  std::vector<CheckpointRecord> pruned;
  pruned.reserve(manifest->records.size() - retire.size());
  {
    std::set<size_t> retire_set(retire.begin(), retire.end());
    for (size_t i = 0; i < manifest->records.size(); ++i) {
      if (!retire_set.count(i)) pruned.push_back(manifest->records[i]);
    }
  }
  std::vector<CheckpointRecord> original = std::move(manifest->records);
  manifest->records = std::move(pruned);
  Status persisted =
      store->fs()->WriteFile(manifest_path, manifest->Serialize());
  if (!persisted.ok()) {
    manifest->records = std::move(original);
    return persisted;
  }
  report.manifest_rewritten = true;
  report.surviving_records = static_cast<int64_t>(manifest->records.size());

  // Delete the retired objects shard by shard. Each delete goes through
  // the shard's writer lock, so a concurrent materializer on another shard
  // never contends with retirement here. Failures leak an orphan (the
  // manifest already dropped the record) — reported, never fatal.
  for (int shard = 0; shard < store->num_shards(); ++shard) {
    GcShardStats& stats = report.shards[static_cast<size_t>(shard)];
    for (const CheckpointRecord& rec : by_shard[static_cast<size_t>(shard)]) {
      Status s = store->DeleteObject(rec.key);
      if (s.ok()) {
        ++stats.retired_objects;
        stats.retired_bytes += rec.stored_bytes;
      } else if (s.IsNotFound()) {
        ++stats.already_absent;
      } else {
        ++stats.failed_deletes;
      }
    }
  }
  return report;
}

Result<GcReport> RetireRun(FileSystem* fs, const std::string& manifest_path,
                           const std::string& ckpt_prefix,
                           const GcPolicy& policy) {
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        fs->ReadFile(manifest_path));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  CheckpointStore store(fs, ckpt_prefix, manifest.shard_count);
  return RetireCheckpoints(&store, &manifest, manifest_path, policy);
}

}  // namespace flor
