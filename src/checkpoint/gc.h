// Shard-aware checkpoint retirement (the tail of the paper's background
// lifecycle: record → materialize → spool → retire).
//
// A long record run accumulates one Loop End Checkpoint per accepted loop
// execution; replay only ever needs a recent suffix of them (a worker
// restores from the newest boundary at or before its partition start). The
// GC retires everything older under a keep-last-K-per-loop policy:
//
//   * planning is manifest-only — the manifest already records every
//     object's loop, epoch, and shard, so retirement never lists or scans
//     the store;
//   * the pruned manifest is persisted FIRST (one atomic WriteFile), so a
//     reader planning a replay at any instant sees either the old complete
//     index or the new pruned one — never a plan that references a deleted
//     object;
//   * object deletes then proceed shard by shard through the store's
//     per-shard writer locks. A crash mid-delete leaves orphaned objects
//     (bytes the manifest no longer references), which are harmless to
//     replay and reclaimed by the next GC's orphan accounting — it never
//     leaves a manifest record without its object.
//
// Epochs a live replay plan restores from can be pinned
// (GcPolicy::pinned_epochs, typically from flor::PlannedRestoreEpochs) so
// retention never deletes a checkpoint a planned-but-not-yet-run replay
// needs.

#ifndef FLOR_CHECKPOINT_GC_H_
#define FLOR_CHECKPOINT_GC_H_

#include <string>
#include <vector>

#include "checkpoint/store.h"
#include "env/filesystem.h"

namespace flor {

/// Retention policy for one run's checkpoint store.
struct GcPolicy {
  /// Keep the checkpoints of the K most recent epochs per loop; 0 disables
  /// retirement entirely (the GC is then a guaranteed no-op: no manifest
  /// rewrite, no deletes, byte-identical store).
  int64_t keep_last_k = 0;
  /// Main-loop epochs that must survive regardless of recency — the epochs
  /// a concurrently planned replay will restore from (sorted or not; the
  /// GC treats it as a set). Applies to every loop's checkpoint at those
  /// epochs.
  std::vector<int64_t> pinned_epochs;
};

/// One shard's retirement outcome.
struct GcShardStats {
  int64_t retired_objects = 0;  ///< objects deleted from this shard
  uint64_t retired_bytes = 0;   ///< their stored (on-disk) bytes
  /// Deletes that failed (flaky store): the object is already unreferenced
  /// by the manifest, so it is a leaked orphan, not a correctness problem.
  int64_t failed_deletes = 0;
  /// Objects the manifest referenced but the store no longer had (e.g. a
  /// prior GC's delete landed but its crash lost nothing else).
  int64_t already_absent = 0;
};

/// Outcome of one retirement pass.
struct GcReport {
  std::vector<GcShardStats> shards;  ///< indexed by shard
  int64_t surviving_records = 0;     ///< manifest records after the pass
  bool manifest_rewritten = false;   ///< false when nothing retired

  int64_t retired_objects() const {
    int64_t n = 0;
    for (const auto& s : shards) n += s.retired_objects;
    return n;
  }
  uint64_t retired_bytes() const {
    uint64_t n = 0;
    for (const auto& s : shards) n += s.retired_bytes;
    return n;
  }
  int64_t failed_deletes() const {
    int64_t n = 0;
    for (const auto& s : shards) n += s.failed_deletes;
    return n;
  }
  /// True when every planned delete landed (orphan-free pass).
  bool ok() const { return failed_deletes() == 0; }
};

/// Pure planning: indices into `manifest.records` that `policy` retires,
/// in record order. Keeps, per loop: the K most recent distinct epochs,
/// every pinned epoch, and every record without an epoch index (top-level
/// loops, ctx-less checkpoints — they are not part of the epoch timeline).
std::vector<size_t> PlanRetirement(const Manifest& manifest,
                                   const GcPolicy& policy);

/// Retires checkpoints of the run whose manifest is `*manifest` and whose
/// objects live in `*store`: prunes the manifest in place, persists it
/// atomically at `manifest_path`, then deletes the retired objects shard
/// by shard. With `policy.keep_last_k == 0` this is a guaranteed no-op.
/// Delete failures do not fail the pass (see GcReport::failed_deletes);
/// only a manifest persist failure returns non-OK (nothing is deleted in
/// that case).
Result<GcReport> RetireCheckpoints(CheckpointStore* store,
                                   Manifest* manifest,
                                   const std::string& manifest_path,
                                   const GcPolicy& policy);

/// Convenience: loads the manifest at `manifest_path` from `fs`, opens the
/// store at `ckpt_prefix` with the manifest's recorded shard count, and
/// retires. (The run-prefix → path layout lives with the record session;
/// this layer takes the two paths explicitly.)
Result<GcReport> RetireRun(FileSystem* fs, const std::string& manifest_path,
                           const std::string& ckpt_prefix,
                           const GcPolicy& policy);

}  // namespace flor

#endif  // FLOR_CHECKPOINT_GC_H_
