// Shard-aware checkpoint retirement (the tail of the paper's background
// lifecycle: record → materialize → spool → retire).
//
// A long record run accumulates one Loop End Checkpoint per accepted loop
// execution; replay only ever needs a recent suffix of them (a worker
// restores from the newest boundary at or before its partition start). The
// GC retires everything older under a keep-last-K-per-loop policy:
//
//   * planning is manifest-only — the manifest already records every
//     object's loop, epoch, and shard, so retirement never lists or scans
//     the store;
//   * the pruned manifest is persisted FIRST (one atomic WriteFile), so a
//     reader planning a replay at any instant sees either the old complete
//     index or the new pruned one — never a plan that references a deleted
//     object;
//   * object deletes then proceed shard by shard through the store's
//     per-shard writer locks. A crash mid-delete leaves orphaned objects
//     (bytes the manifest no longer references), which are harmless to
//     replay and reclaimed by the next GC's orphan accounting — it never
//     leaves a manifest record without its object.
//
// Epochs a live replay plan restores from can be pinned
// (GcPolicy::pinned_epochs, typically from flor::PlannedRestoreEpochs) so
// retention never deletes a checkpoint a planned-but-not-yet-run replay
// needs. Pins protect *epoch-level* records only (ctx is a single "e=N"
// segment): worker init restores the epoch-level loops and skips their
// bodies, so nested-loop checkpoints are never init-restore targets and
// retire by recency alone.
//
// With a bucket tier attached to the store, retirement is *tiered*:
//
//   * RetireCheckpoints demotes — it deletes only the local copy of each
//     retired object (after verifying the bucket mirror holds it) and
//     leaves the manifest intact, because the record is still readable
//     through the bucket fall-through. Unspooled objects are skipped, so
//     demotion never makes a record unreadable.
//   * RetireBucketCheckpoints is the final-tier GC (keep-newest-K',
//     unpinned): it follows the same manifest-first ordering contract —
//     prune + persist the manifest atomically, then delete the bucket
//     object and any lingering local copy.
//   * ReconcileOrphans is the off-hot-path sweep reclaiming the orphans
//     both passes leak by design on failed deletes (and the ones
//     rehydration resurrects when it races local GC). Run it between
//     sessions, not concurrently with a record run: a mid-materialize
//     object is not yet in the manifest and would be swept as an orphan.

#ifndef FLOR_CHECKPOINT_GC_H_
#define FLOR_CHECKPOINT_GC_H_

#include <string>
#include <vector>

#include "checkpoint/store.h"
#include "env/filesystem.h"

namespace flor {

/// Retention policy for one run's checkpoint store.
struct GcPolicy {
  /// Keep the checkpoints of the K most recent epochs per loop; 0 disables
  /// retirement entirely (the GC is then a guaranteed no-op: no manifest
  /// rewrite, no deletes, byte-identical store).
  int64_t keep_last_k = 0;
  /// Main-loop epochs that must survive regardless of recency — the epochs
  /// a concurrently planned replay will restore from (sorted or not; the
  /// GC treats it as a set). Protects epoch-level records (single-segment
  /// ctx) at those epochs; nested-loop records are not init-restore
  /// targets and retire by recency regardless of pins.
  std::vector<int64_t> pinned_epochs;
};

/// Retention policy for the bucket tier (the durable archive). Same shape
/// as GcPolicy, separate type: local K and bucket K' are tuned
/// independently (K' >= K keeps the bucket a superset of the local tier).
struct BucketGcPolicy {
  /// Keep the bucket checkpoints of the K' most recent epochs per loop;
  /// 0 disables bucket retirement (guaranteed no-op).
  int64_t keep_last_k = 0;
  /// Epoch pins, same semantics as GcPolicy::pinned_epochs.
  std::vector<int64_t> pinned_epochs;
};

/// One shard's retirement outcome.
struct GcShardStats {
  int64_t retired_objects = 0;  ///< objects deleted from this shard
  uint64_t retired_bytes = 0;   ///< their stored (on-disk) bytes
  /// Deletes that failed (flaky store): the object is already unreferenced
  /// by the manifest, so it is a leaked orphan, not a correctness problem.
  int64_t failed_deletes = 0;
  /// Objects the manifest referenced but the store no longer had (e.g. a
  /// prior GC's delete landed but its crash lost nothing else).
  int64_t already_absent = 0;
  /// Demotion only: retired records whose local copy was kept because the
  /// bucket mirror does not hold them yet (not spooled, or the spool
  /// failed). Demotion never makes a record unreadable.
  int64_t skipped_unspooled = 0;
};

/// Outcome of one retirement pass.
struct GcReport {
  std::vector<GcShardStats> shards;  ///< indexed by shard
  int64_t surviving_records = 0;     ///< manifest records after the pass
  bool manifest_rewritten = false;   ///< false when nothing retired
  /// True when the pass demoted (bucket tier attached: local deletes only,
  /// manifest intact) rather than retired outright.
  bool demoted_to_bucket = false;

  int64_t retired_objects() const {
    int64_t n = 0;
    for (const auto& s : shards) n += s.retired_objects;
    return n;
  }
  uint64_t retired_bytes() const {
    uint64_t n = 0;
    for (const auto& s : shards) n += s.retired_bytes;
    return n;
  }
  int64_t failed_deletes() const {
    int64_t n = 0;
    for (const auto& s : shards) n += s.failed_deletes;
    return n;
  }
  int64_t skipped_unspooled() const {
    int64_t n = 0;
    for (const auto& s : shards) n += s.skipped_unspooled;
    return n;
  }
  /// True when every planned delete landed (orphan-free pass).
  bool ok() const { return failed_deletes() == 0; }
};

/// One shard's orphan-reconciliation outcome.
struct ReconcileShardStats {
  int64_t local_orphans = 0;        ///< unreferenced local objects deleted
  uint64_t local_orphan_bytes = 0;
  int64_t bucket_orphans = 0;       ///< unreferenced bucket objects deleted
  uint64_t bucket_orphan_bytes = 0;
  int64_t failed_deletes = 0;       ///< orphans that survived (still orphans)
};

/// Outcome of one ReconcileOrphans sweep.
struct ReconcileReport {
  std::vector<ReconcileShardStats> shards;  ///< indexed by shard

  int64_t local_orphans() const {
    int64_t n = 0;
    for (const auto& s : shards) n += s.local_orphans;
    return n;
  }
  int64_t bucket_orphans() const {
    int64_t n = 0;
    for (const auto& s : shards) n += s.bucket_orphans;
    return n;
  }
  uint64_t orphan_bytes() const {
    uint64_t n = 0;
    for (const auto& s : shards)
      n += s.local_orphan_bytes + s.bucket_orphan_bytes;
    return n;
  }
  int64_t failed_deletes() const {
    int64_t n = 0;
    for (const auto& s : shards) n += s.failed_deletes;
    return n;
  }
  bool ok() const { return failed_deletes() == 0; }
};

/// Pure planning: indices into `manifest.records` that `policy` retires,
/// in record order. Keeps, per loop: the K most recent distinct epochs,
/// every pinned epoch on epoch-level records (single-segment ctx — the
/// only records init-mode restores), and every record without an epoch
/// index (top-level loops, ctx-less checkpoints — they are not part of
/// the epoch timeline).
std::vector<size_t> PlanRetirement(const Manifest& manifest,
                                   const GcPolicy& policy);

/// Retires checkpoints of the run whose manifest is `*manifest` and whose
/// objects live in `*store`.
///
/// Without a bucket tier: prunes the manifest in place, persists it
/// atomically at `manifest_path`, then deletes the retired objects shard
/// by shard. Delete failures do not fail the pass (see
/// GcReport::failed_deletes); only a manifest persist failure returns
/// non-OK (nothing is deleted in that case).
///
/// With a bucket tier (store->has_bucket()): *demotes* instead — deletes
/// only the local copies of retired objects whose bucket mirror copy
/// exists (GcShardStats::skipped_unspooled counts the rest) and leaves the
/// manifest untouched, since every record stays readable through the
/// bucket fall-through. Final-tier reclamation is RetireBucketCheckpoints.
///
/// With `policy.keep_last_k == 0` this is a guaranteed no-op either way.
Result<GcReport> RetireCheckpoints(CheckpointStore* store,
                                   Manifest* manifest,
                                   const std::string& manifest_path,
                                   const GcPolicy& policy);

/// Final-tier retirement (requires store->has_bucket()): prunes the
/// manifest of records older than the newest K' epochs per loop (pins
/// honored, same planner as the local tier) and persists it FIRST — the
/// same ordering contract as local GC — then deletes each retired
/// record's bucket object and any lingering local copy through the
/// per-shard writer locks. Per record: a hard delete failure on either
/// tier counts as failed_deletes (the orphan sweep reclaims it); both
/// tiers already gone counts as already_absent; otherwise retired.
Result<GcReport> RetireBucketCheckpoints(CheckpointStore* store,
                                         Manifest* manifest,
                                         const std::string& manifest_path,
                                         const BucketGcPolicy& policy);

/// Off-hot-path orphan sweep: diffs the manifest against ListPrefix of
/// every shard (local tier and, when attached, bucket tier) and deletes
/// unreferenced objects through the per-shard writer locks. Reclaims what
/// retirement leaks by design on failed deletes or crashes, and what
/// rehydration resurrects when it races local GC. Must not run
/// concurrently with a record session (mid-materialize objects are not in
/// the manifest yet).
ReconcileReport ReconcileOrphans(CheckpointStore* store,
                                 const Manifest& manifest);

/// Convenience: loads the manifest at `manifest_path` from `fs`, opens the
/// store at `ckpt_prefix` with the manifest's recorded shard count
/// (attaching `bucket_prefix` when non-empty, which makes the pass a
/// demotion), and retires. (The run-prefix → path layout lives with the
/// record session; this layer takes the paths explicitly.)
Result<GcReport> RetireRun(FileSystem* fs, const std::string& manifest_path,
                           const std::string& ckpt_prefix,
                           const GcPolicy& policy,
                           const std::string& bucket_prefix = "");

/// Convenience wrapper for RetireBucketCheckpoints, mirroring RetireRun.
Result<GcReport> RetireBucketRun(FileSystem* fs,
                                 const std::string& manifest_path,
                                 const std::string& ckpt_prefix,
                                 const std::string& bucket_prefix,
                                 const BucketGcPolicy& policy);

/// Convenience wrapper for ReconcileOrphans, mirroring RetireRun. Empty
/// `bucket_prefix` sweeps the local tier only.
Result<ReconcileReport> ReconcileRun(FileSystem* fs,
                                     const std::string& manifest_path,
                                     const std::string& ckpt_prefix,
                                     const std::string& bucket_prefix = "");

}  // namespace flor

#endif  // FLOR_CHECKPOINT_GC_H_
