#include "checkpoint/store.h"

#include <algorithm>
#include <cstdlib>

#include "common/strings.h"

namespace flor {

std::vector<int64_t> Manifest::EpochsWithCheckpoint(int32_t loop_id) const {
  std::vector<int64_t> out;
  for (const auto& rec : records)
    if (rec.key.loop_id == loop_id && rec.epoch >= 0)
      out.push_back(rec.epoch);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t Manifest::TotalStoredBytes() const {
  uint64_t total = 0;
  for (const auto& rec : records) total += rec.stored_bytes;
  return total;
}

uint64_t Manifest::TotalNominalBytes() const {
  uint64_t total = 0;
  for (const auto& rec : records)
    total += rec.nominal_raw_bytes ? rec.nominal_raw_bytes : rec.raw_bytes;
  return total;
}

std::string Manifest::Serialize() const {
  std::string out;
  out += StrCat("workload\t", workload, "\n");
  out += StrFormat("record_runtime\t%.9g\n", record_runtime_seconds);
  out += StrFormat("vanilla_runtime\t%.9g\n", vanilla_runtime_seconds);
  out += StrFormat("c_estimate\t%.9g\n", c_estimate);
  for (const auto& [loop_id, n] : loop_executions)
    out += StrCat("loop_exec\t", loop_id, "\t", n, "\n");
  for (const auto& rec : records) {
    out += StrCat("ckpt\t", rec.key.loop_id, "\t", rec.key.ctx, "\t",
                  rec.epoch, "\t", rec.raw_bytes, "\t", rec.stored_bytes,
                  "\t", rec.nominal_raw_bytes, "\t",
                  StrFormat("%.9g", rec.materialize_seconds), "\n");
  }
  return out;
}

Result<Manifest> Manifest::Deserialize(const std::string& data) {
  Manifest m;
  for (const auto& line : StrSplit(data, '\n')) {
    if (line.empty()) continue;
    auto fields = StrSplit(line, '\t');
    const std::string& tag = fields[0];
    if (tag == "workload" && fields.size() == 2) {
      m.workload = fields[1];
    } else if (tag == "record_runtime" && fields.size() == 2) {
      m.record_runtime_seconds = std::strtod(fields[1].c_str(), nullptr);
    } else if (tag == "vanilla_runtime" && fields.size() == 2) {
      m.vanilla_runtime_seconds = std::strtod(fields[1].c_str(), nullptr);
    } else if (tag == "c_estimate" && fields.size() == 2) {
      m.c_estimate = std::strtod(fields[1].c_str(), nullptr);
    } else if (tag == "loop_exec" && fields.size() == 3) {
      m.loop_executions[static_cast<int32_t>(
          std::strtol(fields[1].c_str(), nullptr, 10))] =
          std::strtoll(fields[2].c_str(), nullptr, 10);
    } else if (tag == "ckpt" && fields.size() == 8) {
      CheckpointRecord rec;
      rec.key.loop_id =
          static_cast<int32_t>(std::strtol(fields[1].c_str(), nullptr, 10));
      rec.key.ctx = fields[2];
      rec.epoch = std::strtoll(fields[3].c_str(), nullptr, 10);
      rec.raw_bytes = std::strtoull(fields[4].c_str(), nullptr, 10);
      rec.stored_bytes = std::strtoull(fields[5].c_str(), nullptr, 10);
      rec.nominal_raw_bytes = std::strtoull(fields[6].c_str(), nullptr, 10);
      rec.materialize_seconds = std::strtod(fields[7].c_str(), nullptr);
      m.records.push_back(std::move(rec));
    } else {
      return Status::Corruption("malformed manifest line: " + line);
    }
  }
  return m;
}

CheckpointStore::CheckpointStore(FileSystem* fs, std::string prefix)
    : fs_(fs), prefix_(std::move(prefix)) {}

std::string CheckpointStore::PathFor(const CheckpointKey& key) const {
  return StrCat(prefix_, "/", key.ToString(), ".ckpt");
}

Status CheckpointStore::PutBytes(const CheckpointKey& key,
                                 const std::string& bytes) {
  return fs_->WriteFile(PathFor(key), bytes);
}

Result<std::string> CheckpointStore::GetBytes(
    const CheckpointKey& key) const {
  return fs_->ReadFile(PathFor(key));
}

Result<NamedSnapshots> CheckpointStore::Get(const CheckpointKey& key) const {
  FLOR_ASSIGN_OR_RETURN(std::string bytes, GetBytes(key));
  return DecodeCheckpoint(bytes);
}

bool CheckpointStore::Exists(const CheckpointKey& key) const {
  return fs_->Exists(PathFor(key));
}

uint64_t CheckpointStore::TotalBytes() const {
  return fs_->TotalBytesUnder(prefix_ + "/");
}

}  // namespace flor
