#include "checkpoint/store.h"

#include <algorithm>

// Manifest::Deserialize parses numeric fields with the strict helpers in
// common/strings.h (whole field consumed, non-empty, in range): the
// permissive strto* defaults (garbage parses as 0) would silently turn a
// truncated manifest into a plausible-looking empty one.
#include "common/strings.h"

namespace flor {

std::string JoinObjectPath(const std::string& prefix,
                           const std::string& rel) {
  std::string out = prefix;
  while (!out.empty() && out.back() == '/') out.pop_back();
  size_t start = 0;
  while (start < rel.size() && rel[start] == '/') ++start;
  if (out.empty()) return rel.substr(start);
  if (start >= rel.size()) return out;
  out += '/';
  out.append(rel, start, std::string::npos);
  return out;
}

std::vector<int64_t> Manifest::EpochsWithCheckpoint(int32_t loop_id) const {
  std::vector<int64_t> out;
  for (const auto& rec : records)
    if (rec.key.loop_id == loop_id && rec.epoch >= 0)
      out.push_back(rec.epoch);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t Manifest::TotalStoredBytes() const {
  uint64_t total = 0;
  for (const auto& rec : records) total += rec.stored_bytes;
  return total;
}

uint64_t Manifest::TotalNominalBytes() const {
  uint64_t total = 0;
  for (const auto& rec : records)
    total += rec.nominal_raw_bytes ? rec.nominal_raw_bytes : rec.raw_bytes;
  return total;
}

std::string Manifest::Serialize() const {
  const bool sharded = shard_count != 1;
  std::string out;
  out += StrCat("workload\t", workload, "\n");
  out += StrFormat("record_runtime\t%.9g\n", record_runtime_seconds);
  out += StrFormat("vanilla_runtime\t%.9g\n", vanilla_runtime_seconds);
  out += StrFormat("c_estimate\t%.9g\n", c_estimate);
  if (sharded) out += StrCat("shards\t", shard_count, "\n");
  for (const auto& [loop_id, n] : loop_executions)
    out += StrCat("loop_exec\t", loop_id, "\t", n, "\n");
  for (const auto& rec : records) {
    out += StrCat("ckpt\t", rec.key.loop_id, "\t", rec.key.ctx, "\t",
                  rec.epoch, "\t", rec.raw_bytes, "\t", rec.stored_bytes,
                  "\t", rec.nominal_raw_bytes, "\t",
                  StrFormat("%.9g", rec.materialize_seconds));
    if (sharded) out += StrCat("\t", rec.shard);
    out += "\n";
  }
  return out;
}

Result<Manifest> Manifest::Deserialize(const std::string& data) {
  Manifest m;
  for (const auto& line : StrSplit(data, '\n')) {
    if (line.empty()) continue;
    auto fields = StrSplit(line, '\t');
    const std::string& tag = fields[0];
    bool ok = false;
    if (tag == "workload" && fields.size() == 2) {
      m.workload = fields[1];
      ok = true;
    } else if (tag == "record_runtime" && fields.size() == 2) {
      ok = ParseF64(fields[1], &m.record_runtime_seconds);
    } else if (tag == "vanilla_runtime" && fields.size() == 2) {
      ok = ParseF64(fields[1], &m.vanilla_runtime_seconds);
    } else if (tag == "c_estimate" && fields.size() == 2) {
      ok = ParseF64(fields[1], &m.c_estimate);
    } else if (tag == "shards" && fields.size() == 2) {
      int64_t n = 0;
      ok = ParseI64(fields[1], &n) && n >= 1 && n <= 1 << 20;
      if (ok) m.shard_count = static_cast<int>(n);
    } else if (tag == "loop_exec" && fields.size() == 3) {
      int32_t loop_id = 0;
      int64_t n = 0;
      ok = ParseI32(fields[1], &loop_id) && ParseI64(fields[2], &n);
      if (ok) m.loop_executions[loop_id] = n;
    } else if (tag == "ckpt" &&
               (fields.size() == 8 || fields.size() == 9)) {
      // 8 fields: pre-sharding format (shard implicitly 0); 9 fields adds
      // the shard column.
      CheckpointRecord rec;
      ok = ParseI32(fields[1], &rec.key.loop_id) &&
           ParseI64(fields[3], &rec.epoch) &&
           ParseU64(fields[4], &rec.raw_bytes) &&
           ParseU64(fields[5], &rec.stored_bytes) &&
           ParseU64(fields[6], &rec.nominal_raw_bytes) &&
           ParseF64(fields[7], &rec.materialize_seconds);
      rec.key.ctx = fields[2];
      if (ok && fields.size() == 9) {
        // Bound before narrowing: an out-of-int-range value must be
        // Corruption, not a silent wrap past the shard-count check.
        int64_t shard = 0;
        ok = ParseI64(fields[8], &shard) && shard >= 0 && shard <= 1 << 20;
        if (ok) rec.shard = static_cast<int>(shard);
      }
      if (ok) m.records.push_back(std::move(rec));
    }
    if (!ok)
      return Status::Corruption("malformed manifest line: " + line);
  }
  // Cross-field validation: every record's shard must fit the shard count
  // (an out-of-range shard means the manifest was stitched or truncated).
  for (const auto& rec : m.records) {
    if (rec.shard >= m.shard_count) {
      return Status::Corruption(
          StrCat("checkpoint ", rec.key.ToString(), " on shard ", rec.shard,
                 " but manifest declares ", m.shard_count, " shard(s)"));
    }
  }
  return m;
}

CheckpointStore::CheckpointStore(FileSystem* fs, std::string prefix,
                                 int num_shards)
    : fs_(fs), prefix_(std::move(prefix)), router_(num_shards) {
  shards_.reserve(static_cast<size_t>(router_.num_shards()));
  for (int s = 0; s < router_.num_shards(); ++s)
    shards_.push_back(std::make_unique<Shard>());
}

std::unique_ptr<CheckpointStore> CheckpointStore::Open(
    FileSystem* fs, const std::string& prefix, const TierOptions& tier,
    const Manifest* manifest, int num_shards) {
  const int shards = manifest != nullptr ? manifest->shard_count : num_shards;
  auto store = std::make_unique<CheckpointStore>(fs, prefix, shards);
  if (!tier.bucket_prefix.empty())
    store->AttachBucket(tier.bucket_prefix, tier.bucket_rehydrate);
  if (tier.bloom_filter) {
    // Size each shard's filter for the run's manifest and seed it from the
    // same records replay plans against — the rebuild-on-open story. With
    // no manifest yet (a run still being written) the default sizing
    // applies and PutBytes populates the filter as objects land.
    BloomOptions bloom;
    bloom.target_fpr = tier.bloom_target_fpr;
    if (manifest != nullptr) {
      bloom.expected_keys_per_shard = std::max<int64_t>(
          64, static_cast<int64_t>(manifest->records.size()) /
                      std::max(manifest->shard_count, 1) +
              1);
    }
    store->EnableBloom(bloom);
    if (manifest != nullptr) store->SeedBloomFromManifest(*manifest);
  }
  return store;
}

Status CheckpointStore::PutBytes(const CheckpointKey& key,
                                 const std::string& bytes) {
  const int shard_idx = router_.ShardOf(key);
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  std::lock_guard<std::mutex> lock(shard.mu);
  FLOR_RETURN_IF_ERROR(fs_->WriteFile(PathFor(key), bytes));
  // Publish to the bloom filter only after the write landed: a reader that
  // sees the bit set before the object exists would merely probe and miss
  // (a false positive), but the reverse order could skip a real object.
  if (bloom_enabled())
    filters_[static_cast<size_t>(shard_idx)]->Add(key.ToString());
  ++shard.stats.objects;
  shard.stats.bytes += bytes.size();
  return Status::OK();
}

void CheckpointStore::EnableBloom(const BloomOptions& options) {
  filters_.clear();
  filters_.reserve(static_cast<size_t>(router_.num_shards()));
  for (int s = 0; s < router_.num_shards(); ++s) {
    filters_.push_back(std::make_unique<BloomFilter>(
        options.expected_keys_per_shard, options.target_fpr));
  }
}

void CheckpointStore::SeedBloomFromManifest(const Manifest& manifest) {
  if (!bloom_enabled()) return;
  for (const auto& rec : manifest.records) {
    filters_[static_cast<size_t>(router_.ShardOf(rec.key))]->Add(
        rec.key.ToString());
  }
}

bool CheckpointStore::BloomRulesAbsent(const CheckpointKey& key) const {
  if (!bloom_enabled()) return false;
  if (filters_[static_cast<size_t>(router_.ShardOf(key))]->MayContain(
          key.ToString())) {
    return false;
  }
  bloom_skipped_probes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void CheckpointStore::AttachBucket(std::string bucket_prefix,
                                   bool rehydrate_on_fault) {
  bucket_prefix_ = std::move(bucket_prefix);
  rehydrate_on_fault_ = rehydrate_on_fault;
}

Result<std::string> CheckpointStore::GetBytes(const CheckpointKey& key,
                                              bool* from_bucket) const {
  if (from_bucket) *from_bucket = false;
  const std::string local_path = PathFor(key);
  if (BloomRulesAbsent(key)) {
    // Definite miss: answer NotFound without touching any tier, with the
    // exact bytes the filterless probe would have returned — the both-tier
    // message is built from the same unprobed paths, and the single-tier
    // case reproduces the filesystems' uniform "no such file" NotFound
    // (both MemFileSystem and the POSIX backend use this shape), so
    // callers matching on messages cannot tell the filter was consulted.
    if (has_bucket()) {
      return Status::NotFound(
          StrCat("checkpoint ", key.ToString(), " missing in both tiers (",
                 local_path, ", ", BucketPathFor(key), ")"));
    }
    return Status::NotFound(StrCat("no such file: ", local_path));
  }
  auto local = fs_->ReadFile(local_path);
  if (local.ok() || !local.status().IsNotFound() || !has_bucket()) {
    if (!local.ok() && local.status().IsNotFound() && bloom_enabled())
      bloom_false_positives_.fetch_add(1, std::memory_order_relaxed);
    return local;
  }

  // Local miss with a bucket attached: fall through to the mirror. Any
  // bucket error other than NotFound (torn object, IO) propagates as-is;
  // a miss in both tiers is reported against the key with both probed
  // paths, so aggressive-GC-without-spool failures are diagnosable.
  const std::string bucket_path = BucketPathFor(key);
  auto remote = fs_->ReadFile(bucket_path);
  if (!remote.ok()) {
    if (!remote.status().IsNotFound()) return remote;
    if (bloom_enabled())
      bloom_false_positives_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound(
        StrCat("checkpoint ", key.ToString(), " missing in both tiers (",
               local_path, ", ", bucket_path, ")"));
  }
  bucket_faults_.fetch_add(1, std::memory_order_relaxed);
  if (from_bucket) *from_bucket = true;

  if (rehydrate_on_fault_) {
    // Write-back under the shard's writer lock, like any other write to
    // the shard. Failure is non-fatal: the read already succeeded.
    Shard& shard = *shards_[static_cast<size_t>(router_.ShardOf(key))];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (fs_->WriteFile(local_path, *remote).ok())
      rehydrated_objects_.fetch_add(1, std::memory_order_relaxed);
    else
      rehydrate_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return remote;
}

Result<NamedSnapshots> CheckpointStore::Get(const CheckpointKey& key,
                                            bool* from_bucket) const {
  FLOR_ASSIGN_OR_RETURN(std::string bytes, GetBytes(key, from_bucket));
  return DecodeCheckpoint(bytes);
}

bool CheckpointStore::Exists(const CheckpointKey& key) const {
  if (BloomRulesAbsent(key)) return false;
  if (fs_->Exists(PathFor(key))) return true;
  if (has_bucket() && fs_->Exists(BucketPathFor(key))) return true;
  if (bloom_enabled())
    bloom_false_positives_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

Status CheckpointStore::DeleteObject(const CheckpointKey& key) {
  Shard& shard = *shards_[static_cast<size_t>(router_.ShardOf(key))];
  std::lock_guard<std::mutex> lock(shard.mu);
  return fs_->DeleteFile(PathFor(key));
}

Status CheckpointStore::DeleteShardPath(int shard, const std::string& path) {
  if (shard < 0 || shard >= router_.num_shards())
    return Status::InvalidArgument(
        StrCat("shard ", shard, " out of range for ", router_.num_shards(),
               " shard(s)"));
  Shard& s = *shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.mu);
  return fs_->DeleteFile(path);
}

uint64_t CheckpointStore::TotalBytes() const {
  // Shard prefixes partition the store's namespace, so summing the root
  // prefix covers every shard (and, at shard count 1, exactly the legacy
  // flat layout).
  return fs_->TotalBytesUnder(prefix_ + "/");
}

std::vector<ShardWriteStats> CheckpointStore::WriteStatsByShard() const {
  std::vector<ShardWriteStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.push_back(shard->stats);
  }
  return out;
}

TierStats CheckpointStore::tier_stats() const {
  TierStats stats;
  stats.bucket_faults = bucket_faults_.load(std::memory_order_relaxed);
  stats.rehydrated_objects =
      rehydrated_objects_.load(std::memory_order_relaxed);
  stats.rehydrate_failures =
      rehydrate_failures_.load(std::memory_order_relaxed);
  stats.bloom_skipped_probes =
      bloom_skipped_probes_.load(std::memory_order_relaxed);
  stats.bloom_false_positives =
      bloom_false_positives_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace flor
