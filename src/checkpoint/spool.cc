#include "checkpoint/spool.h"

namespace flor {

double S3MonthlyCost(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0) *
         kS3DollarsPerGBMonth;
}

Result<SpoolReport> SpoolToS3(FileSystem* fs, const std::string& src_prefix,
                              const std::string& dst_prefix) {
  SpoolReport report;
  for (const auto& path : fs->ListPrefix(src_prefix)) {
    FLOR_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
    const std::string rel = path.substr(src_prefix.size());
    FLOR_RETURN_IF_ERROR(fs->WriteFile(dst_prefix + rel, data));
    ++report.objects;
    report.bytes += data.size();
  }
  report.monthly_cost_dollars = S3MonthlyCost(report.bytes);
  return report;
}

}  // namespace flor
