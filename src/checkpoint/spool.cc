#include "checkpoint/spool.h"

#include <utility>

namespace flor {

double S3MonthlyCost(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0) *
         kS3DollarsPerGBMonth;
}

SpoolReport AggregateSpoolReports(const std::vector<SpoolReport>& reports) {
  SpoolReport total;
  for (const auto& r : reports) {
    total.objects += r.objects;
    total.bytes += r.bytes;
    total.batches += r.batches;
    total.retries += r.retries;
    total.failed_objects += r.failed_objects;
    if (total.first_error.empty()) total.first_error = r.first_error;
  }
  total.monthly_cost_dollars = S3MonthlyCost(total.bytes);
  return total;
}

SpoolQueue::SpoolQueue(FileSystem* fs, int num_shards, SpoolOptions options)
    : fs_(fs), options_(options) {
  if (num_shards < 1) num_shards = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.max_batch_objects < 1) options_.max_batch_objects = 1;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s)
    shards_.push_back(std::make_unique<ShardState>());
}

SpoolQueue::~SpoolQueue() { Drain(); }

void SpoolQueue::Enqueue(int shard, std::string src_path,
                         std::string dst_path, uint64_t size_hint) {
  ShardState& s = *shards_[static_cast<size_t>(shard)];
  uint64_t size = size_hint;
  if (size == 0) {
    auto sz = fs_->FileSize(src_path);
    // A missing source surfaces when the batch runs; size 0 just means the
    // byte bound won't trip early for it.
    if (sz.ok()) size = *sz;
  }
  std::vector<Item> batch;
  {
    // The batch is taken in the same critical section as the bound
    // decision, so concurrent enqueuers on one shard can never grow a
    // batch past the configured bounds before it flushes.
    std::lock_guard<std::mutex> lock(s.mu);
    s.pending.push_back(Item{std::move(src_path), std::move(dst_path), size});
    s.pending_bytes += size;
    if (s.pending_bytes >= options_.max_batch_bytes ||
        static_cast<int64_t>(s.pending.size()) >=
            options_.max_batch_objects) {
      batch.swap(s.pending);
      s.pending_bytes = 0;
    }
  }
  if (!batch.empty()) SubmitBatch(shard, std::move(batch));
}

void SpoolQueue::FlushShard(int shard) {
  ShardState& s = *shards_[static_cast<size_t>(shard)];
  std::vector<Item> batch;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.pending.empty()) return;
    batch.swap(s.pending);
    s.pending_bytes = 0;
  }
  SubmitBatch(shard, std::move(batch));
}

void SpoolQueue::SubmitBatch(int shard, std::vector<Item> batch) {
  // Bounded queue: don't let flushes pile unboundedly behind the worker.
  // submit_mu_ makes the bound hard — without it, concurrent flushers
  // could all observe a free slot and overshoot by (producers - 1).
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  queue_.WaitUntilInFlightBelow(options_.max_queued_batches);
  queue_.Submit([this, shard, items = std::move(batch)]() mutable {
    RunBatch(shard, std::move(items));
  });
}

void SpoolQueue::RunBatch(int shard, std::vector<Item> items) {
  // Local tallies first: the shard report is only touched once, under its
  // lock, after the I/O is done.
  SpoolReport delta;
  delta.batches = 1;
  for (const Item& item : items) {
    auto data = fs_->ReadFile(item.src);
    if (!data.ok()) {
      ++delta.failed_objects;
      if (delta.first_error.empty())
        delta.first_error = data.status().ToString();
      continue;
    }
    Status last;
    bool written = false;
    for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
      // Each object is one atomic WriteFile: a retry replaces nothing
      // partial, and objects spooled earlier in the batch stay spooled no
      // matter how this one fares.
      last = fs_->WriteFile(item.dst, *data);
      if (last.ok()) {
        written = true;
        break;
      }
      if (attempt + 1 < options_.max_attempts) ++delta.retries;
    }
    if (written) {
      ++delta.objects;
      delta.bytes += data->size();
    } else {
      ++delta.failed_objects;
      if (delta.first_error.empty()) delta.first_error = last.ToString();
    }
  }

  ShardState& s = *shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.mu);
  s.report.objects += delta.objects;
  s.report.bytes += delta.bytes;
  s.report.batches += delta.batches;
  s.report.retries += delta.retries;
  s.report.failed_objects += delta.failed_objects;
  if (s.report.first_error.empty())
    s.report.first_error = delta.first_error;
}

void SpoolQueue::Flush() {
  for (int shard = 0; shard < num_shards(); ++shard) FlushShard(shard);
}

void SpoolQueue::Drain() {
  Flush();
  queue_.Drain();
}

SpoolReport SpoolQueue::ShardReport(int shard) const {
  const ShardState& s = *shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.mu);
  SpoolReport report = s.report;
  report.monthly_cost_dollars = S3MonthlyCost(report.bytes);
  return report;
}

SpoolReport SpoolQueue::TotalReport() const {
  std::vector<SpoolReport> per_shard;
  per_shard.reserve(shards_.size());
  for (int shard = 0; shard < num_shards(); ++shard)
    per_shard.push_back(ShardReport(shard));
  return AggregateSpoolReports(per_shard);
}

SpoolReport SpoolStore(const CheckpointStore& store,
                       const std::string& dst_prefix,
                       const SpoolOptions& options) {
  SpoolQueue queue(store.fs(), store.num_shards(), options);
  const std::string base = store.prefix() + "/";
  for (int shard = 0; shard < store.num_shards(); ++shard) {
    for (const auto& path :
         store.fs()->ListPrefix(store.ShardPrefix(shard) + "/")) {
      // Preserve the shard layout under the destination: the bucket
      // mirrors the store, so a shard-aware reader finds objects the same
      // way on either side. JoinObjectPath normalizes slashes so the
      // mirror layout is byte-identical to SpoolToS3's for the same
      // destination, trailing slash or not.
      const std::string rel = path.substr(base.size());
      queue.Enqueue(shard, path, JoinObjectPath(dst_prefix, rel));
    }
  }
  queue.Drain();
  return queue.TotalReport();
}

Result<SpoolReport> SpoolToS3(FileSystem* fs, const std::string& src_prefix,
                              const std::string& dst_prefix) {
  SpoolQueue queue(fs, /*num_shards=*/1);
  // Normalize the source base to exactly one trailing slash before taking
  // relative paths: a caller passing "run/ckpt" and one passing
  // "run/ckpt/" must produce the same mirror layout (the un-normalized
  // substr either swallowed the leading character of every relative path
  // or emitted "dst//…" double-slash keys, diverging from SpoolStore).
  std::string base = src_prefix;
  while (!base.empty() && base.back() == '/') base.pop_back();
  base += '/';
  for (const auto& path : fs->ListPrefix(base)) {
    const std::string rel = path.substr(base.size());
    queue.Enqueue(/*shard=*/0, path, JoinObjectPath(dst_prefix, rel));
  }
  queue.Drain();
  SpoolReport report = queue.TotalReport();
  if (!report.ok()) {
    return Status::IOError(
        report.first_error.empty() ? "spool failed" : report.first_error);
  }
  return report;
}

}  // namespace flor
