// Background materialization (paper §5.1, Fig. 5).
//
// "To materialize a record checkpoint, the main process forks and then
//  immediately resumes model training; the child process serializes the
//  checkpoint, writes it to disk, and then terminates."
//
// Four strategies are modeled, matching Fig. 5's comparison. What differs
// is *which phases block the training thread*:
//
//   strategy     main thread                      background
//   ----------   ------------------------------   -------------------
//   kBaseline    serialize + write                (nothing)
//   kIpcQueue    serialize (IPC requires it)      write
//   kIpcPlasma   shared-memory copy (arrays only) write
//   kFork        COW snapshot + fork overhead     serialize + write
//
// The materializer always performs the real serialize/compress/write (state
// correctness is never simulated). Time is accounted two ways:
//   * SimClock env: phase durations come from `MaterializerCosts` applied to
//     the checkpoint's *nominal* byte size, charged to the simulated clock;
//     background work occupies a simulated single worker with bounded
//     in-flight depth (the paper batches to keep ≤ ~2 live children), and
//     the main thread stalls when the buffer is full — this is what makes
//     fine-tuning workloads blow up without adaptive checkpointing (Fig 7).
//   * WallClock env: phases run for real; blocking portions are measured,
//     background work goes through a BackgroundQueue.

#ifndef FLOR_CHECKPOINT_MATERIALIZER_H_
#define FLOR_CHECKPOINT_MATERIALIZER_H_

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/store.h"
#include "env/background_queue.h"
#include "env/env.h"

namespace flor {

/// Materialization strategy (Fig. 5 legend).
enum class MaterializeStrategy : uint8_t {
  kBaseline = 0,   ///< "cloudpickle": serialize + write on main thread
  kIpcQueue = 1,   ///< multiprocessing queue: serialize main, write bg
  kIpcPlasma = 2,  ///< Apache Plasma: shm copy main, write bg (arrays only)
  kFork = 3,       ///< fork + COW: snapshot main, serialize + write bg
};

const char* MaterializeStrategyName(MaterializeStrategy s);

/// Throughput model for the simulated-time mode. Defaults are calibrated to
/// the paper's platform (§5.1/§6): EBS at 7 Gbps, serialization ~4.3× the
/// I/O cost, memcpy-speed snapshots.
struct MaterializerCosts {
  double snapshot_bps = 4.0e9;     ///< COW page-copy / memcpy rate
  double serialize_bps = 203.5e6;  ///< 875e6 / 4.3 (paper's 4.3x factor)
  double io_bps = 875e6;           ///< EBS 7 Gbps
  double fork_batch_overhead_s = 0.004;  ///< fork() + bookkeeping per batch
  double plasma_copy_bps = 3.0e9;  ///< shm copy slightly below memcpy
  double plasma_per_object_s = 5e-7;  ///< object-table overhead per object
  double restore_factor = 1.38;  ///< c: restore time = c * materialize time
  /// Cost of making one checkpoint's durability *visible* — the fsync (or
  /// bucket round trip) behind each durable notification. 0 (the default)
  /// models buffered writes, reproducing the pre-group-commit timings
  /// exactly; production-rate benches set an fsync-scale value. The ack
  /// gates the training thread in every strategy, so the charge lands on
  /// the main-thread leg, amortized as durable_notify_seconds /
  /// group_commit_window per checkpoint: one sync per closed slot,
  /// piggybacked by the slot's followers (WiredTiger log-slot style).
  double durable_notify_seconds = 0.0;

  /// Mi: full background materialization time for `bytes`.
  double MaterializeSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / serialize_bps +
           static_cast<double>(bytes) / io_bps;
  }
  /// Bucket reads run at S3 GET throughput instead of EBS: scale the I/O
  /// leg of a bucket-tier restore by io_bps / s3_read_bps (~2.1 Gbps,
  /// same order as the paper's spool pricing platform).
  double s3_read_bps = 262.5e6;

  /// Ri = c * Mi.
  double RestoreSeconds(uint64_t bytes) const {
    return restore_factor * MaterializeSeconds(bytes);
  }

  /// Ri for a restore served by the bucket tier: the serialize leg is
  /// unchanged, the I/O leg runs at bucket read throughput.
  double BucketRestoreSeconds(uint64_t bytes) const {
    return restore_factor * (static_cast<double>(bytes) / serialize_bps +
                             static_cast<double>(bytes) / s3_read_bps);
  }
};

/// Group-commit slot accounting across a materializer's lifetime.
struct GroupCommitStats {
  int64_t slots = 0;           ///< slots closed (incl. the drain flush)
  int64_t joins = 0;           ///< checkpoints that joined a slot
  int64_t syncs = 0;           ///< durable syncs paid (one per slot)
  int64_t max_slot_joins = 0;  ///< largest slot delivered

  double JoinsPerSlot() const {
    return slots > 0 ? static_cast<double>(joins) /
                           static_cast<double>(slots)
                     : 0;
  }
};

/// Timing outcome of one Materialize call.
struct MaterializeReceipt {
  double main_thread_seconds = 0;  ///< blocked training-thread time
  double stall_seconds = 0;        ///< part of main time due to backpressure
  double background_seconds = 0;   ///< bg serialize/write duration (Mi part)
  uint64_t stored_bytes = 0;       ///< actual on-disk size
  uint64_t raw_bytes = 0;          ///< actual snapshot size
};

/// Options for the materializer.
struct MaterializerOptions {
  MaterializeStrategy strategy = MaterializeStrategy::kFork;
  MaterializerCosts costs;
  /// Maximum simultaneously in-flight background jobs before the main
  /// thread stalls ("we have never seen more than two live children").
  int max_in_flight = 2;
  /// Number of state objects per checkpoint batch (paper: 5000); only the
  /// per-object strategies are sensitive to it.
  int64_t objects_per_batch = 5000;
  /// Group-commit slot size: durable notifications are batched until a slot
  /// holds this many checkpoints, then delivered together behind one
  /// amortized sync (the slot leader pays durable_notify_seconds, followers
  /// piggyback). 1 (the default) delivers each notification immediately —
  /// byte-identical to the per-checkpoint path. End-of-run Drain() flushes
  /// a partial slot, so no acked checkpoint's notification is ever lost.
  int group_commit_window = 1;
  /// Invoked once a checkpoint's bytes are durably in the store (PutBytes
  /// returned OK): inline on the training thread under a simulated clock
  /// or the Baseline strategy, on the background worker thread otherwise —
  /// so it must be thread-safe in wall mode and must never block on the
  /// materializer itself. The record session hands checkpoints to the
  /// background spooler through this hook (spool-as-you-materialize); it
  /// is not called for failed writes.
  std::function<void(const CheckpointKey& key, uint64_t stored_bytes)>
      on_durable;
};

/// Serializes + writes checkpoints, off the training thread when the
/// strategy allows. Thread-compatible: used from the single training thread.
class Materializer {
 public:
  /// Does not own `env`. Uses env->clock() for accounting; in wall mode a
  /// real background worker is spun up lazily.
  Materializer(Env* env, MaterializerOptions options);
  ~Materializer();

  /// Stores `snaps` under `key` in `store`. `nominal_raw_bytes` scales the
  /// simulated costs (0 = use the actual snapshot size).
  Result<MaterializeReceipt> Materialize(CheckpointStore* store,
                                         const CheckpointKey& key,
                                         NamedSnapshots snaps,
                                         uint64_t nominal_raw_bytes);

  /// Blocks until all background work has completed. In sim mode, advances
  /// the clock to the last completion (end-of-run join, like waiting for
  /// forked children).
  void Drain();

  /// Totals across all Materialize calls.
  double total_main_thread_seconds() const { return total_main_seconds_; }
  double total_stall_seconds() const { return total_stall_seconds_; }
  double total_background_seconds() const { return total_bg_seconds_; }
  int64_t checkpoint_count() const { return count_; }

  /// Slot accounting. Stable after Drain(); safe to call concurrently with
  /// background notifications (internally locked).
  GroupCommitStats group_commit_stats() const;

  const MaterializerOptions& options() const { return options_; }

 private:
  /// Simulated-time accounting; returns (main_seconds, stall_seconds).
  std::pair<double, double> AccountSim(uint64_t nominal_bytes,
                                       double* bg_seconds);

  /// Group-commit entry point for one durably stored checkpoint: joins the
  /// open slot and, when the slot reaches group_commit_window, delivers the
  /// slot's on_durable notifications in store order (outside the slot lock,
  /// so delivery may backpressure on the spooler without holding it).
  /// Called inline on the training thread (sim / Baseline) or on the
  /// background worker (wall mode) — same threads that invoked on_durable
  /// directly before group commit existed.
  void NotifyDurable(const CheckpointKey& key, uint64_t stored_bytes);

  /// Delivers a partial slot at end of run (one more amortized sync when
  /// non-empty). Drain() calls this after the queue join, preserving the
  /// "every acked checkpoint's notification fired before Drain returns"
  /// contract the record session relies on.
  void FlushGroupCommitSlot();

  Env* env_;
  MaterializerOptions options_;

  /// Open group-commit slot (keys + sizes in store order) and its stats.
  mutable std::mutex gc_mu_;
  std::vector<std::pair<CheckpointKey, uint64_t>> gc_slot_;
  GroupCommitStats gc_stats_;

  // Sim-mode background ledger: completion times (seconds) of in-flight
  // jobs, and when the single background worker frees up.
  std::deque<double> inflight_completions_;
  double bg_busy_until_ = 0;

  // Wall-mode worker.
  std::unique_ptr<BackgroundQueue> queue_;

  double total_main_seconds_ = 0;
  double total_stall_seconds_ = 0;
  double total_bg_seconds_ = 0;
  int64_t count_ = 0;
};

}  // namespace flor

#endif  // FLOR_CHECKPOINT_MATERIALIZER_H_
