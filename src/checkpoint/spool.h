// Checkpoint spooling to cloud object storage (paper §6.2, Table 4).
//
// "The checkpoints materialized by Flor record were compressed by a
//  background process, before being spooled to an S3 bucket."
//
// The spooler copies checkpoint objects from a local prefix to an "s3/"
// prefix on the same FileSystem (the MemFileSystem doubles as the simulated
// bucket) and prices the result at S3 standard-storage rates.
//
// SpoolQueue is the production path: objects are grouped into size-bounded
// batches per shard, each batch runs as one background job on a
// BackgroundQueue worker (the paper's single background child), transient
// write failures are retried per object, and the outcome is reported per
// shard. Because every object lands with one atomic WriteFile, a failed or
// killed batch never un-spools objects that already copied — shard-local
// progress is monotone.

#ifndef FLOR_CHECKPOINT_SPOOL_H_
#define FLOR_CHECKPOINT_SPOOL_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "checkpoint/store.h"
#include "common/status.h"
#include "env/background_queue.h"
#include "env/filesystem.h"

namespace flor {

/// Outcome of spooling (one shard's, or aggregated).
struct SpoolReport {
  int64_t objects = 0;         ///< objects successfully copied
  uint64_t bytes = 0;          ///< bytes successfully copied
  int64_t batches = 0;         ///< spool jobs executed
  int64_t retries = 0;         ///< failed write attempts that were retried
  int64_t failed_objects = 0;  ///< objects abandoned after max attempts
  double monthly_cost_dollars = 0;
  std::string first_error;     ///< first failure message (diagnostics)

  bool ok() const { return failed_objects == 0; }
};

/// Sums reports (per-shard -> store-wide); keeps the first error seen.
SpoolReport AggregateSpoolReports(const std::vector<SpoolReport>& reports);

/// S3 standard storage price used throughout the benches ($/GB/month).
inline constexpr double kS3DollarsPerGBMonth = 0.023;

/// Monthly cost of storing `bytes` at S3 standard rates.
double S3MonthlyCost(uint64_t bytes);

/// Spool batching/retry knobs.
struct SpoolOptions {
  /// A shard's pending batch flushes once it holds this many bytes...
  uint64_t max_batch_bytes = 8ull << 20;
  /// ...or this many objects, whichever comes first.
  int64_t max_batch_objects = 64;
  /// Write attempts per object before it is abandoned (>= 1).
  int max_attempts = 3;
  /// Backpressure: producers block once this many batch jobs are queued
  /// behind the background worker (0 disables the bound).
  size_t max_queued_batches = 8;
};

/// Asynchronous batched spooler. Enqueue() is thread-safe (per-shard
/// locking, same discipline as the sharded CheckpointStore); batches
/// execute on a single background worker. Reports are stable after
/// Drain().
class SpoolQueue {
 public:
  /// Does not own `fs`. `num_shards` sizes the per-shard batching/report
  /// state (use 1 for unsharded spools).
  SpoolQueue(FileSystem* fs, int num_shards, SpoolOptions options = {});

  /// Drains outstanding batches.
  ~SpoolQueue();

  SpoolQueue(const SpoolQueue&) = delete;
  SpoolQueue& operator=(const SpoolQueue&) = delete;

  /// Adds one object copy (src_path -> dst_path) to `shard`'s pending
  /// batch, flushing the batch as a background job when it exceeds the
  /// configured bounds. `size_hint` skips the size stat when the caller
  /// already knows the object size.
  void Enqueue(int shard, std::string src_path, std::string dst_path,
               uint64_t size_hint = 0);

  /// Submits every shard's partial batch (without waiting).
  void Flush();

  /// Flush() + blocks until all submitted batches have run.
  void Drain();

  /// One shard's report. Call after Drain() for final numbers.
  SpoolReport ShardReport(int shard) const;

  /// Aggregate over all shards.
  SpoolReport TotalReport() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Item {
    std::string src;
    std::string dst;
    uint64_t size = 0;
  };
  struct ShardState {
    mutable std::mutex mu;
    std::vector<Item> pending;
    uint64_t pending_bytes = 0;
    SpoolReport report;
  };

  /// Moves `shard`'s pending items out (under its lock) and submits them
  /// as one batch job.
  void FlushShard(int shard);

  /// Submits one batch to the background worker, blocking while
  /// max_queued_batches jobs are already in flight (hard bound).
  void SubmitBatch(int shard, std::vector<Item> batch);

  /// Executes one batch on the background worker.
  void RunBatch(int shard, std::vector<Item> items);

  FileSystem* fs_;
  SpoolOptions options_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Serializes the wait-for-slot + Submit pair so max_queued_batches is
  /// a hard bound under concurrent flushers.
  std::mutex submit_mu_;
  BackgroundQueue queue_;
};

/// Spools every object of `store` (all shards, layout preserved) under
/// `dst_prefix`, synchronously: enqueue + drain. Failures are carried in
/// the report (`ok()` / `failed_objects`), not as a Status — partial
/// progress is real and already priced.
SpoolReport SpoolStore(const CheckpointStore& store,
                       const std::string& dst_prefix,
                       const SpoolOptions& options = SpoolOptions());

/// Legacy one-shot spool: copies all objects under `src_prefix` to
/// `dst_prefix` and prices them. Now a thin wrapper over SpoolQueue; the
/// first abandoned object surfaces as an error status. Trailing slashes
/// on either prefix are normalized away, so the mirror layout is
/// byte-identical to SpoolStore's for the same destination.
Result<SpoolReport> SpoolToS3(FileSystem* fs, const std::string& src_prefix,
                              const std::string& dst_prefix);

}  // namespace flor

#endif  // FLOR_CHECKPOINT_SPOOL_H_
