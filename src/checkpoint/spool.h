// Checkpoint spooling to cloud object storage (paper §6.2, Table 4).
//
// "The checkpoints materialized by Flor record were compressed by a
//  background process, before being spooled to an S3 bucket."
//
// The spooler copies everything under a local prefix to an "s3/" prefix on
// the same FileSystem (the MemFileSystem doubles as the simulated bucket)
// and prices the result at S3 standard-storage rates.

#ifndef FLOR_CHECKPOINT_SPOOL_H_
#define FLOR_CHECKPOINT_SPOOL_H_

#include <string>

#include "common/status.h"
#include "env/filesystem.h"

namespace flor {

/// Outcome of spooling one record run.
struct SpoolReport {
  int64_t objects = 0;
  uint64_t bytes = 0;
  double monthly_cost_dollars = 0;
};

/// S3 standard storage price used throughout the benches ($/GB/month).
inline constexpr double kS3DollarsPerGBMonth = 0.023;

/// Monthly cost of storing `bytes` at S3 standard rates.
double S3MonthlyCost(uint64_t bytes);

/// Copies all objects under `src_prefix` to `dst_prefix` and prices them.
Result<SpoolReport> SpoolToS3(FileSystem* fs, const std::string& src_prefix,
                              const std::string& dst_prefix);

}  // namespace flor

#endif  // FLOR_CHECKPOINT_SPOOL_H_
