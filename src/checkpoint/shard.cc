#include "checkpoint/shard.h"

#include "common/crc32.h"
#include "common/strings.h"

namespace flor {

ShardRouter::ShardRouter(int num_shards)
    : num_shards_(num_shards < 1 ? 1 : num_shards) {}

int ShardRouter::ShardOf(const CheckpointKey& key) const {
  if (num_shards_ == 1) return 0;
  const std::string id = key.ToString();
  return static_cast<int>(Crc32c(id.data(), id.size()) %
                          static_cast<uint32_t>(num_shards_));
}

std::string ShardRouter::ShardDir(int shard) const {
  if (num_shards_ == 1) return "";
  return StrFormat("shard-%04d", shard);
}

std::string ShardRouter::ShardPrefix(const std::string& store_prefix,
                                     int shard) const {
  if (num_shards_ == 1) return store_prefix;
  return StrCat(store_prefix, "/", ShardDir(shard));
}

std::string ShardRouter::PathFor(const std::string& store_prefix,
                                 const CheckpointKey& key) const {
  return StrCat(ShardPrefix(store_prefix, ShardOf(key)), "/", key.ToString(),
                ".ckpt");
}

}  // namespace flor
