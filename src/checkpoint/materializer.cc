#include "checkpoint/materializer.h"

#include <algorithm>

#include "common/logging.h"

namespace flor {

const char* MaterializeStrategyName(MaterializeStrategy s) {
  switch (s) {
    case MaterializeStrategy::kBaseline:
      return "Baseline";
    case MaterializeStrategy::kIpcQueue:
      return "IPC-Queue";
    case MaterializeStrategy::kIpcPlasma:
      return "IPC-Plasma";
    case MaterializeStrategy::kFork:
      return "Fork";
  }
  return "?";
}

Materializer::Materializer(Env* env, MaterializerOptions options)
    : env_(env), options_(options) {
  if (options_.group_commit_window < 1) options_.group_commit_window = 1;
}

Materializer::~Materializer() { Drain(); }

void Materializer::NotifyDurable(const CheckpointKey& key,
                                 uint64_t stored_bytes) {
  std::vector<std::pair<CheckpointKey, uint64_t>> closed;
  {
    std::lock_guard<std::mutex> lock(gc_mu_);
    gc_slot_.emplace_back(key, stored_bytes);
    ++gc_stats_.joins;
    if (static_cast<int>(gc_slot_.size()) < options_.group_commit_window)
      return;
    closed.swap(gc_slot_);
    ++gc_stats_.slots;
    ++gc_stats_.syncs;
    gc_stats_.max_slot_joins = std::max(
        gc_stats_.max_slot_joins, static_cast<int64_t>(closed.size()));
  }
  // Deliver outside the slot lock: on_durable may block on the spooler's
  // bounded queue, and a stalled delivery must not wedge other joiners.
  if (options_.on_durable) {
    for (const auto& [k, bytes] : closed) options_.on_durable(k, bytes);
  }
}

void Materializer::FlushGroupCommitSlot() {
  std::vector<std::pair<CheckpointKey, uint64_t>> closed;
  {
    std::lock_guard<std::mutex> lock(gc_mu_);
    if (gc_slot_.empty()) return;
    closed.swap(gc_slot_);
    ++gc_stats_.slots;
    ++gc_stats_.syncs;
    gc_stats_.max_slot_joins = std::max(
        gc_stats_.max_slot_joins, static_cast<int64_t>(closed.size()));
  }
  if (options_.on_durable) {
    for (const auto& [k, bytes] : closed) options_.on_durable(k, bytes);
  }
}

GroupCommitStats Materializer::group_commit_stats() const {
  std::lock_guard<std::mutex> lock(gc_mu_);
  return gc_stats_;
}

std::pair<double, double> Materializer::AccountSim(uint64_t nominal_bytes,
                                                   double* bg_seconds) {
  const MaterializerCosts& c = options_.costs;
  const double bytes = static_cast<double>(nominal_bytes);
  const double ser = bytes / c.serialize_bps;
  const double io = bytes / c.io_bps;
  // Durability sync, amortized over the group-commit slot: the slot leader
  // pays one durable_notify_seconds and the window's checkpoints share it.
  // The durable *ack* gates the training thread in every strategy — a
  // checkpoint is not committed until the sync acknowledges, regardless of
  // which side performed the store write — so the amortized share lands on
  // the main-thread leg. (Charging it to the background worker would hide
  // it entirely: bg time only surfaces through backpressure stalls.) This
  // is exactly the cost group commit exists to amortize. 0 by default —
  // identical to the pre-group-commit model.
  const double notify = c.durable_notify_seconds /
                        static_cast<double>(options_.group_commit_window);

  double main_s = 0;
  double bg_s = 0;
  switch (options_.strategy) {
    case MaterializeStrategy::kBaseline:
      main_s = ser + io;
      bg_s = 0;
      break;
    case MaterializeStrategy::kIpcQueue:
      main_s = ser;
      bg_s = io;
      break;
    case MaterializeStrategy::kIpcPlasma:
      main_s = bytes / c.plasma_copy_bps +
               c.plasma_per_object_s *
                   static_cast<double>(options_.objects_per_batch);
      bg_s = io;
      break;
    case MaterializeStrategy::kFork:
      main_s = bytes / c.snapshot_bps + c.fork_batch_overhead_s;
      bg_s = ser + io;
      break;
  }
  main_s += notify;
  *bg_seconds = bg_s;

  double stall_s = 0;
  if (bg_s > 0) {
    double now = env_->clock()->NowSeconds();
    // Retire completed jobs.
    while (!inflight_completions_.empty() &&
           inflight_completions_.front() <= now) {
      inflight_completions_.pop_front();
    }
    // Backpressure: the checkpoint buffer is full — the training thread
    // stalls until the oldest background job retires.
    if (static_cast<int>(inflight_completions_.size()) >=
        options_.max_in_flight) {
      const double wake = inflight_completions_.front();
      stall_s = std::max(0.0, wake - now);
      now = wake;
      inflight_completions_.pop_front();
    }
    // Enqueue the new background job on the single background worker.
    const double start = std::max(now + main_s, bg_busy_until_);
    const double done = start + bg_s;
    bg_busy_until_ = done;
    inflight_completions_.push_back(done);
  }
  return {main_s + stall_s, stall_s};
}

Result<MaterializeReceipt> Materializer::Materialize(
    CheckpointStore* store, const CheckpointKey& key, NamedSnapshots snaps,
    uint64_t nominal_raw_bytes) {
  MaterializeReceipt receipt;
  receipt.raw_bytes = SnapshotsRawBytes(snaps);
  const uint64_t nominal =
      nominal_raw_bytes ? nominal_raw_bytes : receipt.raw_bytes;

  if (env_->clock()->is_simulated()) {
    // Real serialize + write (synchronously, correctness path), simulated
    // time (cost model path).
    std::string bytes = EncodeCheckpoint(snaps);
    receipt.stored_bytes = bytes.size();
    FLOR_RETURN_IF_ERROR(store->PutBytes(key, bytes));
    NotifyDurable(key, bytes.size());

    double bg_s = 0;
    auto [main_s, stall_s] = AccountSim(nominal, &bg_s);
    env_->clock()->AdvanceMicros(SecondsToMicros(main_s));
    receipt.main_thread_seconds = main_s;
    receipt.stall_seconds = stall_s;
    receipt.background_seconds = bg_s;
  } else {
    // Wall mode: measure the blocking portion for real.
    const double start = env_->clock()->NowSeconds();
    if (options_.strategy == MaterializeStrategy::kBaseline) {
      std::string bytes = EncodeCheckpoint(snaps);
      receipt.stored_bytes = bytes.size();
      FLOR_RETURN_IF_ERROR(store->PutBytes(key, bytes));
      NotifyDurable(key, bytes.size());
      receipt.main_thread_seconds = env_->clock()->NowSeconds() - start;
      receipt.background_seconds = 0;
    } else {
      // The snapshot deep-copy happened in the caller (SnapshotValue); the
      // remaining blocking work is handing the batch to the worker.
      if (!queue_) queue_ = std::make_unique<BackgroundQueue>();
      // Backpressure: block only until a slot frees, like the sim model's
      // stall-until-oldest-child-retires (a full Drain would serialize
      // the training thread behind every queued checkpoint).
      // max_in_flight <= 0 means fully synchronous (wait for an empty
      // queue before every submit), matching the sim branch's stall-always
      // reading of 0 — it must not disable the bound.
      queue_->WaitUntilInFlightBelow(
          options_.max_in_flight > 0
              ? static_cast<size_t>(options_.max_in_flight)
              : 1);
      auto shared =
          std::make_shared<NamedSnapshots>(std::move(snaps));
      CheckpointStore* store_ptr = store;
      const CheckpointKey key_copy = key;
      // `this` outlives the job: the destructor drains the queue before
      // any member is torn down. NotifyDurable runs on the worker thread —
      // the same thread the raw on_durable callback ran on before group
      // commit existed — and is internally locked.
      queue_->Submit([this, shared, store_ptr, key_copy] {
        std::string bytes = EncodeCheckpoint(*shared);
        // Errors in background materialization are logged, not fatal; the
        // deferred replay checks surface missing checkpoints.
        Status s = store_ptr->PutBytes(key_copy, bytes);
        if (!s.ok()) {
          FLOR_LOG(kError) << "background materialization failed: "
                           << s.ToString();
        } else {
          NotifyDurable(key_copy, bytes.size());
        }
      });
      receipt.main_thread_seconds = env_->clock()->NowSeconds() - start;
      receipt.background_seconds =
          options_.costs.MaterializeSeconds(nominal);
    }
  }

  total_main_seconds_ += receipt.main_thread_seconds;
  total_stall_seconds_ += receipt.stall_seconds;
  total_bg_seconds_ += receipt.background_seconds;
  ++count_;
  return receipt;
}

void Materializer::Drain() {
  if (queue_) queue_->Drain();
  // All store writes have landed; deliver the partial slot so every acked
  // checkpoint's notification has fired before Drain returns (the record
  // session spools and then persists the manifest on that guarantee).
  FlushGroupCommitSlot();
  if (env_->clock()->is_simulated() && !inflight_completions_.empty()) {
    const double last = inflight_completions_.back();
    const double now = env_->clock()->NowSeconds();
    if (last > now)
      env_->clock()->AdvanceMicros(SecondsToMicros(last - now));
    inflight_completions_.clear();
  }
}

}  // namespace flor
