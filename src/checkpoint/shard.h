// Deterministic key→shard placement for the checkpoint store.
//
// Heavy-traffic record runs write checkpoints from the background
// materializer while replay engines read them from many workers; a single
// flat namespace makes every one of those operations contend on the same
// prefix (and, on real object stores, the same rate-limited key range). The
// router splits the store into N shard prefixes, WiredTiger block-manager
// style: placement policy lives here, object I/O stays in the store.
//
// Placement is pure — CRC32C of the checkpoint key, mod the shard count —
// so any reader that knows the shard count from the manifest finds an
// object without probing or directory listings.

#ifndef FLOR_CHECKPOINT_SHARD_H_
#define FLOR_CHECKPOINT_SHARD_H_

#include <string>

#include "checkpoint/checkpoint.h"

namespace flor {

/// Stateless key→shard placement over `num_shards` prefixes.
class ShardRouter {
 public:
  /// `num_shards` < 1 is clamped to 1 (the unsharded legacy layout).
  explicit ShardRouter(int num_shards = 1);

  int num_shards() const { return num_shards_; }

  /// Shard index for `key` in [0, num_shards): CRC32C(key) mod shards.
  int ShardOf(const CheckpointKey& key) const;

  /// Directory component for `shard` under a store prefix: "" for a
  /// single-shard store (objects stay at the pre-sharding flat paths, so
  /// old record runs keep replaying), "shard-0007" otherwise.
  std::string ShardDir(int shard) const;

  /// Full filesystem prefix of one shard: "<store_prefix>" at shard count
  /// 1, "<store_prefix>/shard-NNNN" otherwise.
  std::string ShardPrefix(const std::string& store_prefix, int shard) const;

  /// Object path for `key` under `store_prefix`.
  std::string PathFor(const std::string& store_prefix,
                      const CheckpointKey& key) const;

 private:
  int num_shards_;
};

}  // namespace flor

#endif  // FLOR_CHECKPOINT_SHARD_H_
