// Checkpoint format.
//
// A Loop End Checkpoint (paper §4.1) is the memoized side-effect set of one
// loop execution: a list of (variable name, state snapshot) pairs. On disk
// it is one checksummed frame wrapping an LZ-compressed payload:
//
//   frame{ compress( varint n, n * [ name, ValueSnapshot ] ) }
//
// Keys identify a loop *execution*: the loop id plus the enclosing
// iteration context ("L2@e=17" = loop 2's execution during main-loop
// iteration e=17).

#ifndef FLOR_CHECKPOINT_CHECKPOINT_H_
#define FLOR_CHECKPOINT_CHECKPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ir/value.h"
#include "serialize/coding.h"

namespace flor {

/// Identity of one loop execution.
struct CheckpointKey {
  int32_t loop_id = 0;
  std::string ctx;  ///< "e=17" or "" for top-level loops

  /// "L2@e=17" (filesystem-safe: '/' in ctx becomes '.'). This string is
  /// also the key's placement identity: the store's ShardRouter hashes it
  /// (CRC32C) to pick a shard, so it must stay stable across versions.
  std::string ToString() const;

  /// Parses the main-loop iteration index out of `ctx` ("e=17/i=3" -> 17);
  /// -1 when the context is empty.
  int64_t EpochIndex() const;

  bool operator==(const CheckpointKey& other) const {
    return loop_id == other.loop_id && ctx == other.ctx;
  }
};

/// In-memory checkpoint contents: deep state images keyed by variable name.
using NamedSnapshots =
    std::vector<std::pair<std::string, ir::ValueSnapshot>>;

/// Sum of ApproxBytes over all snapshots — the "raw" checkpoint size.
uint64_t SnapshotsRawBytes(const NamedSnapshots& snaps);

/// Serializes one ValueSnapshot.
void EncodeSnapshot(std::string* dst, const ir::ValueSnapshot& snap);

/// Decodes one ValueSnapshot.
Result<ir::ValueSnapshot> DecodeSnapshot(Decoder* dec);

/// Full checkpoint encode: serialize, compress, frame.
std::string EncodeCheckpoint(const NamedSnapshots& snaps);

/// Inverse of EncodeCheckpoint (checksum + decompression verified).
Result<NamedSnapshots> DecodeCheckpoint(const std::string& bytes);

}  // namespace flor

#endif  // FLOR_CHECKPOINT_CHECKPOINT_H_
