#include "checkpoint/checkpoint.h"

#include <cstdlib>

#include "common/strings.h"
#include "serialize/compress.h"
#include "serialize/frame.h"
#include "tensor/serialize.h"

namespace flor {

std::string CheckpointKey::ToString() const {
  std::string safe_ctx = ctx;
  for (char& c : safe_ctx)
    if (c == '/') c = '.';
  return StrCat("L", loop_id, "@", safe_ctx);
}

int64_t CheckpointKey::EpochIndex() const {
  if (ctx.empty()) return -1;
  const auto eq = ctx.find('=');
  if (eq == std::string::npos) return -1;
  return std::strtoll(ctx.c_str() + eq + 1, nullptr, 10);
}

uint64_t SnapshotsRawBytes(const NamedSnapshots& snaps) {
  uint64_t total = 0;
  for (const auto& [name, snap] : snaps)
    total += name.size() + snap.ApproxBytes();
  return total;
}

void EncodeSnapshot(std::string* dst, const ir::ValueSnapshot& snap) {
  dst->push_back(static_cast<char>(snap.kind));
  switch (snap.kind) {
    case ir::ValueKind::kNone:
      break;
    case ir::ValueKind::kInt:
      PutSignedVarint64(dst, snap.int_v);
      break;
    case ir::ValueKind::kFloat:
      PutDouble(dst, snap.float_v);
      break;
    case ir::ValueKind::kBool:
      dst->push_back(snap.bool_v ? 1 : 0);
      break;
    case ir::ValueKind::kStr:
      PutLengthPrefixed(dst, snap.str_v);
      break;
    case ir::ValueKind::kTensor:
      EncodeTensor(dst, snap.tensor_v);
      break;
    case ir::ValueKind::kModule:
      PutVarint64(dst, snap.params.size());
      for (const auto& [name, t] : snap.params) {
        PutLengthPrefixed(dst, name);
        EncodeTensor(dst, t);
      }
      break;
    case ir::ValueKind::kOptimizer:
      PutLengthPrefixed(dst, snap.opt_kind);
      PutFloat(dst, snap.opt_lr);
      PutSignedVarint64(dst, snap.opt_steps);
      PutVarint64(dst, snap.opt_state.size());
      for (const auto& t : snap.opt_state) EncodeTensor(dst, t);
      break;
    case ir::ValueKind::kScheduler:
      PutLengthPrefixed(dst, snap.sched_kind);
      PutSignedVarint64(dst, snap.sched_epoch);
      break;
    case ir::ValueKind::kLoader:
      break;
    case ir::ValueKind::kRng:
      for (uint64_t w : snap.rng_state) PutFixed64(dst, w);
      break;
  }
}

Result<ir::ValueSnapshot> DecodeSnapshot(Decoder* dec) {
  uint8_t kind_byte;
  FLOR_RETURN_IF_ERROR(dec->GetRaw(&kind_byte, 1));
  if (kind_byte > static_cast<uint8_t>(ir::ValueKind::kRng))
    return Status::Corruption("bad snapshot kind byte");
  ir::ValueSnapshot snap;
  snap.kind = static_cast<ir::ValueKind>(kind_byte);
  switch (snap.kind) {
    case ir::ValueKind::kNone:
      break;
    case ir::ValueKind::kInt:
      FLOR_RETURN_IF_ERROR(dec->GetSignedVarint64(&snap.int_v));
      break;
    case ir::ValueKind::kFloat:
      FLOR_RETURN_IF_ERROR(dec->GetDouble(&snap.float_v));
      break;
    case ir::ValueKind::kBool: {
      uint8_t b;
      FLOR_RETURN_IF_ERROR(dec->GetRaw(&b, 1));
      snap.bool_v = b != 0;
      break;
    }
    case ir::ValueKind::kStr:
      FLOR_RETURN_IF_ERROR(dec->GetLengthPrefixed(&snap.str_v));
      break;
    case ir::ValueKind::kTensor: {
      FLOR_ASSIGN_OR_RETURN(snap.tensor_v, DecodeTensor(dec));
      break;
    }
    case ir::ValueKind::kModule: {
      uint64_t n;
      FLOR_RETURN_IF_ERROR(dec->GetVarint64(&n));
      for (uint64_t i = 0; i < n; ++i) {
        std::string name;
        FLOR_RETURN_IF_ERROR(dec->GetLengthPrefixed(&name));
        FLOR_ASSIGN_OR_RETURN(Tensor t, DecodeTensor(dec));
        snap.params.emplace_back(std::move(name), std::move(t));
      }
      break;
    }
    case ir::ValueKind::kOptimizer: {
      FLOR_RETURN_IF_ERROR(dec->GetLengthPrefixed(&snap.opt_kind));
      FLOR_RETURN_IF_ERROR(dec->GetFloat(&snap.opt_lr));
      FLOR_RETURN_IF_ERROR(dec->GetSignedVarint64(&snap.opt_steps));
      uint64_t n;
      FLOR_RETURN_IF_ERROR(dec->GetVarint64(&n));
      for (uint64_t i = 0; i < n; ++i) {
        FLOR_ASSIGN_OR_RETURN(Tensor t, DecodeTensor(dec));
        snap.opt_state.push_back(std::move(t));
      }
      break;
    }
    case ir::ValueKind::kScheduler:
      FLOR_RETURN_IF_ERROR(dec->GetLengthPrefixed(&snap.sched_kind));
      FLOR_RETURN_IF_ERROR(dec->GetSignedVarint64(&snap.sched_epoch));
      break;
    case ir::ValueKind::kLoader:
      break;
    case ir::ValueKind::kRng:
      for (auto& w : snap.rng_state) FLOR_RETURN_IF_ERROR(dec->GetFixed64(&w));
      break;
  }
  return snap;
}

std::string EncodeCheckpoint(const NamedSnapshots& snaps) {
  std::string payload;
  PutVarint64(&payload, snaps.size());
  for (const auto& [name, snap] : snaps) {
    PutLengthPrefixed(&payload, name);
    EncodeSnapshot(&payload, snap);
  }
  std::string compressed = Compress(payload, Codec::kLz);
  std::string out;
  AppendFrame(&out, compressed);
  return out;
}

Result<NamedSnapshots> DecodeCheckpoint(const std::string& bytes) {
  FrameReader reader(bytes);
  std::string compressed;
  FLOR_RETURN_IF_ERROR(reader.Next(&compressed));
  if (!reader.done())
    return Status::Corruption("trailing data after checkpoint frame");
  FLOR_ASSIGN_OR_RETURN(std::string payload, Decompress(compressed));
  Decoder dec(payload);
  uint64_t n;
  FLOR_RETURN_IF_ERROR(dec.GetVarint64(&n));
  NamedSnapshots out;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    FLOR_RETURN_IF_ERROR(dec.GetLengthPrefixed(&name));
    FLOR_ASSIGN_OR_RETURN(ir::ValueSnapshot snap, DecodeSnapshot(&dec));
    out.emplace_back(std::move(name), std::move(snap));
  }
  if (!dec.done())
    return Status::Corruption("trailing bytes in checkpoint payload");
  return out;
}

}  // namespace flor
