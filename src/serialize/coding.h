// Primitive (de)coding: fixed-width little-endian integers, LEB128 varints,
// zigzag, floats, and length-prefixed strings. All checkpoint bytes go
// through these helpers so the on-disk format is platform-independent.

#ifndef FLOR_SERIALIZE_CODING_H_
#define FLOR_SERIALIZE_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"

namespace flor {

// ----------------------------------------------------------- encoding ---

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint64(std::string* dst, uint64_t v);
void PutVarint32(std::string* dst, uint32_t v);

/// Zigzag-encoded signed varint.
void PutSignedVarint64(std::string* dst, int64_t v);

void PutFloat(std::string* dst, float v);
void PutDouble(std::string* dst, double v);

/// Varint length prefix followed by raw bytes.
void PutLengthPrefixed(std::string* dst, const std::string& s);

// ----------------------------------------------------------- decoding ---

/// Cursor over an immutable byte string. All Get* methods return an error
/// Status on underflow or malformed input and leave the cursor unchanged on
/// failure.
class Decoder {
 public:
  explicit Decoder(const std::string& data)
      : p_(data.data()), end_(data.data() + data.size()) {}
  Decoder(const char* p, size_t n) : p_(p), end_(p + n) {}

  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetVarint64(uint64_t* v);
  Status GetVarint32(uint32_t* v);
  Status GetSignedVarint64(int64_t* v);
  Status GetFloat(float* v);
  Status GetDouble(double* v);
  Status GetLengthPrefixed(std::string* s);

  /// Copies `n` raw bytes.
  Status GetRaw(void* out, size_t n);

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace flor

#endif  // FLOR_SERIALIZE_CODING_H_
