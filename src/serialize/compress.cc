#include "serialize/compress.h"

#include <cstring>
#include <vector>

#include "serialize/coding.h"

namespace flor {

namespace {

// --------------------------------------------------------------- RLE ----
// Format: sequence of (control byte, payload). control < 0x80: literal run
// of control+1 bytes follows. control >= 0x80: repeated run; one byte
// follows, repeated (control - 0x80 + 2) times (min useful run is 2).

std::string RleCompress(const std::string& in) {
  std::string out;
  size_t i = 0;
  const size_t n = in.size();
  while (i < n) {
    // Measure the run starting at i.
    size_t run = 1;
    while (i + run < n && in[i + run] == in[i] && run < 129) ++run;
    if (run >= 2) {
      out.push_back(static_cast<char>(0x80 + (run - 2)));
      out.push_back(in[i]);
      i += run;
      continue;
    }
    // Collect a literal stretch until the next run of >= 3 (a run of 2 is
    // not worth breaking a literal for).
    size_t lit_start = i;
    size_t lit_len = 0;
    while (i < n && lit_len < 128) {
      size_t r = 1;
      while (i + r < n && in[i + r] == in[i] && r < 3) ++r;
      if (r >= 3) break;
      i += 1;
      lit_len += 1;
    }
    out.push_back(static_cast<char>(lit_len - 1));
    out.append(in, lit_start, lit_len);
  }
  return out;
}

Status RleDecompress(const std::string& in, size_t expected, std::string* out) {
  out->clear();
  out->reserve(expected);
  size_t i = 0;
  while (i < in.size()) {
    uint8_t control = static_cast<uint8_t>(in[i++]);
    if (control < 0x80) {
      size_t len = control + 1;
      if (i + len > in.size()) return Status::Corruption("RLE literal overrun");
      out->append(in, i, len);
      i += len;
    } else {
      if (i >= in.size()) return Status::Corruption("RLE run overrun");
      size_t len = (control - 0x80) + 2;
      out->append(len, in[i++]);
    }
  }
  if (out->size() != expected)
    return Status::Corruption("RLE size mismatch");
  return Status::OK();
}

// --------------------------------------------------------------- LZSS ---
// Tokens: flag byte governs the next 8 items (LSB first). Bit clear =
// literal byte. Bit set = match: 2-byte little-endian (offset-1) within a
// 64 KiB window, then 1 byte (length - kMinMatch), kMinMatch = 4.

constexpr size_t kWindow = 65536;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 4 + 255;
constexpr size_t kHashBits = 15;

inline uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

std::string LzCompress(const std::string& in) {
  const auto* data = reinterpret_cast<const uint8_t*>(in.data());
  const size_t n = in.size();
  std::string out;
  out.reserve(n / 2 + 16);

  std::vector<int64_t> head(size_t{1} << kHashBits, -1);
  std::vector<int64_t> prev(n, -1);

  std::string group;          // pending bytes for the current flag group
  uint8_t flags = 0;
  int flag_count = 0;

  auto flush_group = [&]() {
    if (flag_count == 0) return;
    out.push_back(static_cast<char>(flags));
    out += group;
    group.clear();
    flags = 0;
    flag_count = 0;
  };

  size_t i = 0;
  while (i < n) {
    size_t best_len = 0;
    size_t best_off = 0;
    if (i + kMinMatch <= n) {
      uint32_t h = HashAt(data + i);
      int64_t cand = head[h];
      int chain = 16;  // bounded chain walk keeps compression O(n)
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<size_t>(cand) <= kWindow) {
        const size_t c = static_cast<size_t>(cand);
        size_t len = 0;
        const size_t max_len = std::min(kMaxMatch, n - i);
        while (len < max_len && data[c + len] == data[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_off = i - c;
          if (len == max_len) break;
        }
        cand = prev[c];
      }
    }

    if (best_len >= kMinMatch) {
      flags |= static_cast<uint8_t>(1u << flag_count);
      uint16_t off = static_cast<uint16_t>(best_off - 1);
      group.push_back(static_cast<char>(off & 0xff));
      group.push_back(static_cast<char>(off >> 8));
      group.push_back(static_cast<char>(best_len - kMinMatch));
      // Insert hash entries for the covered positions.
      const size_t end = std::min(i + best_len, n >= 3 ? n - 3 : 0);
      for (size_t j = i; j < end; ++j) {
        uint32_t h = HashAt(data + j);
        prev[j] = head[h];
        head[h] = static_cast<int64_t>(j);
      }
      i += best_len;
    } else {
      if (i + 4 <= n) {
        uint32_t h = HashAt(data + i);
        prev[i] = head[h];
        head[h] = static_cast<int64_t>(i);
      }
      group.push_back(static_cast<char>(data[i]));
      i += 1;
    }
    if (++flag_count == 8) flush_group();
  }
  flush_group();
  return out;
}

Status LzDecompress(const std::string& in, size_t expected, std::string* out) {
  out->clear();
  out->reserve(expected);
  size_t i = 0;
  const size_t n = in.size();
  while (i < n) {
    uint8_t flags = static_cast<uint8_t>(in[i++]);
    for (int b = 0; b < 8 && i < n; ++b) {
      if (flags & (1u << b)) {
        if (i + 3 > n) return Status::Corruption("LZ match token truncated");
        uint16_t off_m1 = static_cast<uint8_t>(in[i]) |
                          (static_cast<uint16_t>(static_cast<uint8_t>(in[i + 1]))
                           << 8);
        size_t len = static_cast<uint8_t>(in[i + 2]) + kMinMatch;
        i += 3;
        size_t off = static_cast<size_t>(off_m1) + 1;
        if (off > out->size())
          return Status::Corruption("LZ match offset beyond output");
        size_t src = out->size() - off;
        for (size_t k = 0; k < len; ++k) out->push_back((*out)[src + k]);
      } else {
        out->push_back(in[i++]);
      }
    }
  }
  if (out->size() != expected) return Status::Corruption("LZ size mismatch");
  return Status::OK();
}

}  // namespace

std::string Compress(const std::string& input, Codec codec) {
  std::string body;
  Codec used = codec;
  switch (codec) {
    case Codec::kNone:
      body = input;
      break;
    case Codec::kRle:
      body = RleCompress(input);
      break;
    case Codec::kLz:
      body = LzCompress(input);
      break;
  }
  if (used != Codec::kNone && body.size() >= input.size()) {
    used = Codec::kNone;  // compression did not help; store raw
    body = input;
  }
  std::string out;
  out.push_back(static_cast<char>(used));
  PutVarint64(&out, input.size());
  out += body;
  return out;
}

Result<std::string> Decompress(const std::string& input) {
  if (input.empty()) return Status::Corruption("empty compressed blob");
  Codec codec = static_cast<Codec>(input[0]);
  Decoder dec(input.data() + 1, input.size() - 1);
  uint64_t expected;
  FLOR_RETURN_IF_ERROR(dec.GetVarint64(&expected));
  std::string body(input.data() + (input.size() - dec.remaining()),
                   dec.remaining());
  std::string out;
  switch (codec) {
    case Codec::kNone:
      if (body.size() != expected)
        return Status::Corruption("raw blob size mismatch");
      return body;
    case Codec::kRle:
      FLOR_RETURN_IF_ERROR(RleDecompress(body, expected, &out));
      return out;
    case Codec::kLz:
      FLOR_RETURN_IF_ERROR(LzDecompress(body, expected, &out));
      return out;
  }
  return Status::Corruption("unknown codec byte");
}

Result<Codec> PeekCodec(const std::string& input) {
  if (input.empty()) return Status::Corruption("empty compressed blob");
  uint8_t tag = static_cast<uint8_t>(input[0]);
  if (tag > static_cast<uint8_t>(Codec::kLz))
    return Status::Corruption("unknown codec byte");
  return static_cast<Codec>(tag);
}

}  // namespace flor
