// Block compression for checkpoints.
//
// The paper gzip-compresses checkpoints before spooling them to S3 (Table 4).
// Offline, we implement two from-scratch codecs:
//   * kRle  — byte-level run-length encoding; near-free, wins on the large
//             zero/constant regions common in freshly-initialized or frozen
//             model state.
//   * kLz   — LZSS-style Lempel-Ziv with a 64 KiB window and a chained hash
//             table; the gzip stand-in used for Table 4 sizes.
// The codec byte is stored with the block, so readers self-describe.

#ifndef FLOR_SERIALIZE_COMPRESS_H_
#define FLOR_SERIALIZE_COMPRESS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace flor {

enum class Codec : uint8_t {
  kNone = 0,
  kRle = 1,
  kLz = 2,
};

/// Compresses `input`, prepending a 1-byte codec tag and a varint of the
/// uncompressed size. If compression does not help, stores raw with kNone.
std::string Compress(const std::string& input, Codec codec);

/// Inverse of Compress. Fails with Corruption on malformed input.
Result<std::string> Decompress(const std::string& input);

/// Codec actually used for a compressed blob (after the fallback-to-raw
/// heuristic).
Result<Codec> PeekCodec(const std::string& input);

}  // namespace flor

#endif  // FLOR_SERIALIZE_COMPRESS_H_
