#include "serialize/coding.h"

namespace flor {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

void PutSignedVarint64(std::string* dst, int64_t v) {
  // Zigzag: maps small-magnitude signed to small unsigned.
  uint64_t z = (static_cast<uint64_t>(v) << 1) ^
               static_cast<uint64_t>(v >> 63);
  PutVarint64(dst, z);
}

void PutFloat(std::string* dst, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed32(dst, bits);
}

void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

void PutLengthPrefixed(std::string* dst, const std::string& s) {
  PutVarint64(dst, s.size());
  dst->append(s);
}

Status Decoder::GetFixed32(uint32_t* v) {
  if (remaining() < 4) return Status::Corruption("fixed32 underflow");
  const auto* b = reinterpret_cast<const uint8_t*>(p_);
  *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) |
       (static_cast<uint32_t>(b[3]) << 24);
  p_ += 4;
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* v) {
  uint32_t lo, hi;
  const char* save = p_;
  Status s = GetFixed32(&lo);
  if (s.ok()) s = GetFixed32(&hi);
  if (!s.ok()) {
    p_ = save;
    return s;
  }
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return Status::OK();
}

Status Decoder::GetVarint64(uint64_t* v) {
  const char* save = p_;
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && p_ < end_; shift += 7) {
    uint8_t byte = static_cast<uint8_t>(*p_++);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  p_ = save;
  return Status::Corruption("varint64 malformed or truncated");
}

Status Decoder::GetVarint32(uint32_t* v) {
  uint64_t wide;
  FLOR_RETURN_IF_ERROR(GetVarint64(&wide));
  if (wide > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status Decoder::GetSignedVarint64(int64_t* v) {
  uint64_t z;
  FLOR_RETURN_IF_ERROR(GetVarint64(&z));
  *v = static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  return Status::OK();
}

Status Decoder::GetFloat(float* v) {
  uint32_t bits;
  FLOR_RETURN_IF_ERROR(GetFixed32(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Decoder::GetDouble(double* v) {
  uint64_t bits;
  FLOR_RETURN_IF_ERROR(GetFixed64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string* s) {
  const char* save = p_;
  uint64_t n;
  FLOR_RETURN_IF_ERROR(GetVarint64(&n));
  if (remaining() < n) {
    p_ = save;
    return Status::Corruption("length-prefixed string truncated");
  }
  s->assign(p_, n);
  p_ += n;
  return Status::OK();
}

Status Decoder::GetRaw(void* out, size_t n) {
  if (remaining() < n) return Status::Corruption("raw read underflow");
  std::memcpy(out, p_, n);
  p_ += n;
  return Status::OK();
}

}  // namespace flor
