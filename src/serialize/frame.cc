#include "serialize/frame.h"

#include "common/crc32.h"
#include "serialize/coding.h"

namespace flor {

void AppendFrame(std::string* dst, const std::string& payload) {
  PutFixed32(dst, Crc32c(payload.data(), payload.size()));
  PutVarint64(dst, payload.size());
  dst->append(payload);
}

Status FrameReader::Next(std::string* out) {
  if (done()) return Status::NotFound("end of frames");
  Decoder dec(data_.data() + pos_, data_.size() - pos_);
  uint32_t crc;
  FLOR_RETURN_IF_ERROR(dec.GetFixed32(&crc));
  uint64_t len;
  FLOR_RETURN_IF_ERROR(dec.GetVarint64(&len));
  if (dec.remaining() < len)
    return Status::Corruption("frame payload truncated");
  const size_t header = (data_.size() - pos_) - dec.remaining();
  const char* payload = data_.data() + pos_ + header;
  if (Crc32c(payload, len) != crc)
    return Status::Corruption("frame checksum mismatch");
  out->assign(payload, len);
  pos_ += header + len;
  return Status::OK();
}

Result<std::vector<std::string>> ReadFrames(const std::string& data) {
  std::vector<std::string> out;
  FrameReader reader(data);
  while (!reader.done()) {
    std::string payload;
    FLOR_RETURN_IF_ERROR(reader.Next(&payload));
    out.push_back(std::move(payload));
  }
  return out;
}

}  // namespace flor
