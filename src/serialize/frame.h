// Checksummed frames — the unit of checkpoint storage.
//
// A frame is [fixed32 crc][varint payload_len][payload]. The crc covers the
// payload only. Checkpoint files are a concatenation of frames; corruption
// of any byte is detected on read (property-tested via
// MemFileSystem::CorruptByte).

#ifndef FLOR_SERIALIZE_FRAME_H_
#define FLOR_SERIALIZE_FRAME_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace flor {

/// Appends one frame wrapping `payload` to `dst`.
void AppendFrame(std::string* dst, const std::string& payload);

/// Reads all frames from `data`; fails with Corruption on any checksum or
/// structural error.
Result<std::vector<std::string>> ReadFrames(const std::string& data);

/// Cursor-style reader for streaming consumption.
class FrameReader {
 public:
  explicit FrameReader(const std::string& data) : data_(data) {}

  /// Reads the next frame payload into `out`. Returns NotFound at EOF,
  /// Corruption on checksum mismatch.
  Status Next(std::string* out);

  bool done() const { return pos_ >= data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace flor

#endif  // FLOR_SERIALIZE_FRAME_H_
