#include "common/random.h"

#include <cmath>
#include <cstring>

namespace flor {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  // Box-Muller without caching the second value: stream position stays a
  // pure function of call count, which keeps record/replay streams aligned.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

void Rng::GetState(uint64_t out[4]) const {
  std::memcpy(out, s_, sizeof(s_));
}

void Rng::SetState(const uint64_t in[4]) { std::memcpy(s_, in, sizeof(s_)); }

bool Rng::operator==(const Rng& other) const {
  return std::memcmp(s_, other.s_, sizeof(s_)) == 0;
}

}  // namespace flor
