// Deterministic pseudo-random number generation.
//
// Model training reproducibility is a premise of the paper (§7: "sources of
// non-determinism (e.g. random seeds) are typically captured"). Every random
// draw in florcpp flows through `Rng` so that record and replay see identical
// streams, which the deferred correctness checks (§5.2.2) rely on.

#ifndef FLOR_COMMON_RANDOM_H_
#define FLOR_COMMON_RANDOM_H_

#include <cstdint>

namespace flor {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Cheap to copy; copying captures the full stream state, which is exactly
/// what a Loop End Checkpoint needs to resume the stream on replay.
class Rng {
 public:
  /// Seeds the four-word state from `seed` using SplitMix64 so that nearby
  /// seeds produce uncorrelated streams.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform in [0, n). Precondition: n > 0. Uses rejection sampling, so the
  /// distribution is exactly uniform.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double NextDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare so the
  /// stream position is a pure function of the number of calls).
  double NextGaussian();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Serializable state access (used by tensor/RNG checkpointing).
  void GetState(uint64_t out[4]) const;
  void SetState(const uint64_t in[4]);

  bool operator==(const Rng& other) const;

 private:
  uint64_t s_[4];
};

/// SplitMix64 step; exposed for hashing/seeding helpers.
uint64_t SplitMix64(uint64_t& state);

/// Stateless 64-bit mix (Stafford variant 13); good for fingerprints.
uint64_t Mix64(uint64_t x);

}  // namespace flor

#endif  // FLOR_COMMON_RANDOM_H_
