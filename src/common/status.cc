#include "common/status.h"

namespace flor {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kReplayAnomaly:
      return "ReplayAnomaly";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += msg_;
  return s;
}

}  // namespace flor
