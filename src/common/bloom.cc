#include "common/bloom.h"

#include <algorithm>
#include <cmath>

#include "common/crc32.h"

namespace flor {

namespace {

constexpr double kLn2 = 0.6931471805599453;

/// 64-bit probe base and stride from two CRC32C passes over the key. The
/// second pass is seeded with the first's result, so h1 and h2 are distinct
/// functions of the key (not a rotation of the same 32 bits), which double
/// hashing needs to approximate k independent probes.
struct ProbeSeq {
  uint64_t base;
  uint64_t stride;
};

ProbeSeq MakeProbeSeq(const std::string& key) {
  const uint32_t h1 = Crc32c(key.data(), key.size());
  const uint32_t h2 = Crc32c(h1, key.data(), key.size());
  ProbeSeq seq;
  seq.base = (static_cast<uint64_t>(h1) << 32) | h2;
  // Odd stride: coprime with the power-of-two word grid, and never zero
  // (a zero stride would collapse all k probes onto one bit).
  seq.stride = ((static_cast<uint64_t>(h2) << 32) | h1) | 1;
  return seq;
}

}  // namespace

BloomFilter::BloomFilter(int64_t expected_keys, double target_fpr) {
  const double n = static_cast<double>(std::max<int64_t>(expected_keys, 1));
  double p = target_fpr;
  if (!(p > 0)) p = 1e-4;
  if (p >= 1) p = 0.5;
  const double bits = -n * std::log(p) / (kLn2 * kLn2);
  // Round up to whole 64-bit words, minimum one word.
  const uint64_t words =
      std::max<uint64_t>(1, static_cast<uint64_t>((bits + 63) / 64));
  bit_count_ = words * 64;
  const double bits_per_key = static_cast<double>(bit_count_) / n;
  hash_count_ = static_cast<int>(
      std::min(30.0, std::max(1.0, std::round(bits_per_key * kLn2))));
  words_ = std::make_unique<std::atomic<uint64_t>[]>(words);
  for (uint64_t i = 0; i < words; ++i)
    words_[i].store(0, std::memory_order_relaxed);
}

void BloomFilter::Add(const std::string& key) {
  ProbeSeq seq = MakeProbeSeq(key);
  uint64_t g = seq.base;
  for (int i = 0; i < hash_count_; ++i) {
    const uint64_t bit = g % bit_count_;
    words_[bit >> 6].fetch_or(uint64_t{1} << (bit & 63),
                              std::memory_order_relaxed);
    g += seq.stride;
  }
}

bool BloomFilter::MayContain(const std::string& key) const {
  ProbeSeq seq = MakeProbeSeq(key);
  uint64_t g = seq.base;
  for (int i = 0; i < hash_count_; ++i) {
    const uint64_t bit = g % bit_count_;
    if ((words_[bit >> 6].load(std::memory_order_relaxed) &
         (uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
    g += seq.stride;
  }
  return true;
}

}  // namespace flor
