#include "common/strings.h"

#include <cerrno>
#include <climits>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace flor {

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseI32(const std::string& s, int32_t* out) {
  int64_t v = 0;
  if (!ParseI64(s, &v)) return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int32_t>(v);
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string HumanBytes(uint64_t bytes) {
  const double kb = 1024.0, mb = kb * 1024.0, gb = mb * 1024.0;
  double b = static_cast<double>(bytes);
  if (b >= gb) return StrFormat("%.1f GB", b / gb);
  if (b >= mb) return StrFormat("%.0f MB", b / mb);
  if (b >= kb) return StrFormat("%.0f KB", b / kb);
  return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 3600.0) return StrFormat("%.2f h", seconds / 3600.0);
  if (seconds >= 60.0) return StrFormat("%.1f min", seconds / 60.0);
  if (seconds >= 1.0) return StrFormat("%.1f s", seconds);
  return StrFormat("%.0f ms", seconds * 1000.0);
}

std::string HumanDollars(double dollars) {
  if (dollars < 0.005 && dollars > 0.0) return StrFormat("$ %.3f", dollars);
  return StrFormat("$ %.2f", dollars);
}

}  // namespace flor
