#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace flor {
namespace internal {

namespace {
std::atomic<LogSeverity> g_min_severity{LogSeverity::kWarning};

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

void EmitLog(LogSeverity severity, const char* file, int line,
             const std::string& message) {
  if (severity >= g_min_severity || severity == LogSeverity::kFatal) {
    std::fprintf(stderr, "[flor %s %s:%d] %s\n", SeverityTag(severity), file,
                 line, message.c_str());
  }
  if (severity == LogSeverity::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

LogMessage::~LogMessage() { EmitLog(severity_, file_, line_, stream_.str()); }

}  // namespace internal
}  // namespace flor
