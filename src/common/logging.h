// Internal check macros and a minimal leveled logger.
//
// FLOR_CHECK* are for programmer errors (precondition violations inside the
// library); user-facing failures go through Status instead.

#ifndef FLOR_COMMON_LOGGING_H_
#define FLOR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace flor {
namespace internal {

/// Severity for internal diagnostics (not the hindsight logging subsystem —
/// that lives in exec/log_stream.h).
enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Emits one diagnostic line to stderr; aborts the process on kFatal.
void EmitLog(LogSeverity severity, const char* file, int line,
             const std::string& message);

/// Stream-style builder used by the FLOR_LOG / FLOR_CHECK macros.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity), file_(file), line_(line) {}
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Minimum severity actually emitted; default kWarning so tests stay quiet.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

}  // namespace internal
}  // namespace flor

#define FLOR_LOG(severity)                                              \
  ::flor::internal::LogMessage(::flor::internal::LogSeverity::severity, \
                               __FILE__, __LINE__)

#define FLOR_CHECK(cond)                                       \
  if (!(cond))                                                 \
  ::flor::internal::LogMessage(                                \
      ::flor::internal::LogSeverity::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define FLOR_CHECK_OK(expr)                                      \
  do {                                                           \
    ::flor::Status _flor_chk = (expr);                           \
    FLOR_CHECK(_flor_chk.ok()) << _flor_chk.ToString();          \
  } while (0)

#define FLOR_CHECK_EQ(a, b) FLOR_CHECK((a) == (b))
#define FLOR_CHECK_NE(a, b) FLOR_CHECK((a) != (b))
#define FLOR_CHECK_LT(a, b) FLOR_CHECK((a) < (b))
#define FLOR_CHECK_LE(a, b) FLOR_CHECK((a) <= (b))
#define FLOR_CHECK_GT(a, b) FLOR_CHECK((a) > (b))
#define FLOR_CHECK_GE(a, b) FLOR_CHECK((a) >= (b))

#endif  // FLOR_COMMON_LOGGING_H_
