// Small string utilities shared across modules: formatting, splitting, and
// human-readable units for bench output.

#ifndef FLOR_COMMON_STRINGS_H_
#define FLOR_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace flor {

/// Concatenates the stream representation of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits on a single character; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// Joins with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// Strict numeric parsing for durable formats (manifests, worker result
/// files): the whole string must be consumed, be non-empty, and be in
/// range — the permissive strto* defaults (garbage parses as 0) would
/// silently turn a truncated record into a plausible-looking empty one.
/// ParseF64 accepts everything strtod does, including the hexfloat form
/// StrFormat("%a") emits, so doubles round-trip bit-exactly.
bool ParseI64(const std::string& s, int64_t* out);
bool ParseI32(const std::string& s, int32_t* out);
bool ParseU64(const std::string& s, uint64_t* out);
bool ParseF64(const std::string& s, double* out);

/// "51 MB", "1.1 GB", "705 MB" — matches the paper's table style.
std::string HumanBytes(uint64_t bytes);

/// "1.02 h", "3.4 min", "12.5 s", "340 ms" — for bench tables.
std::string HumanSeconds(double seconds);

/// "$ 0.33" style for the cost tables.
std::string HumanDollars(double dollars);

}  // namespace flor

#endif  // FLOR_COMMON_STRINGS_H_
