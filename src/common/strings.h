// Small string utilities shared across modules: formatting, splitting, and
// human-readable units for bench output.

#ifndef FLOR_COMMON_STRINGS_H_
#define FLOR_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace flor {

/// Concatenates the stream representation of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits on a single character; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// Joins with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// "51 MB", "1.1 GB", "705 MB" — matches the paper's table style.
std::string HumanBytes(uint64_t bytes);

/// "1.02 h", "3.4 min", "12.5 s", "340 ms" — for bench tables.
std::string HumanSeconds(double seconds);

/// "$ 0.33" style for the cost tables.
std::string HumanDollars(double dollars);

}  // namespace flor

#endif  // FLOR_COMMON_STRINGS_H_
