// Bloom filter for checkpoint existence checks (checkpoint/store.h).
//
// A standard (non-blocked) bloom filter over string keys, with both hash
// functions derived from CRC32C (common/crc32.h) via Kirsch–Mitzenmacher
// double hashing: probe i sets/tests bit (h1 + i*h2) mod m. CRC32C is the
// same primitive that places keys on shards (checkpoint/shard.h), so the
// filter adds no new hash dependency and reuses the hardware dispatch.
//
// Concurrency: Add() publishes bits with relaxed atomic fetch_or and
// MayContain() reads them with relaxed loads, so concurrent readers and
// writers are race-free (ThreadSanitizer-clean). Relaxed ordering is
// deliberate — the filter is an *accelerator* for a store whose own reads
// already synchronize with the writes that created the objects; a reader
// that has not yet observed an Add() simply takes the slow path the
// filterless store would have taken anyway. The one guarantee that matters
// is: once Add(k) has returned, MayContain(k) is true on every thread that
// observes the store's own happens-before edge for k — no false negatives.
//
// Deletions are not supported: removing a key's bits could introduce false
// negatives for other keys sharing them. Callers that delete objects keep
// the stale bits (the filter tracks a *superset* of live keys) and rebuild
// from the manifest when precision matters again.

#ifndef FLOR_COMMON_BLOOM_H_
#define FLOR_COMMON_BLOOM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace flor {

class BloomFilter {
 public:
  /// Sizes the filter for `expected_keys` insertions at `target_fpr` false
  /// positives (0 < target_fpr < 1): m = -n*ln(p)/ln(2)^2 bits, k =
  /// round(m/n * ln 2) probes, both clamped to sane minimums so degenerate
  /// inputs (0 keys, p near 1) still yield a working filter.
  BloomFilter(int64_t expected_keys, double target_fpr);

  BloomFilter(const BloomFilter&) = delete;
  BloomFilter& operator=(const BloomFilter&) = delete;

  /// Inserts `key`. Thread-safe against concurrent Add/MayContain.
  void Add(const std::string& key);

  /// False means `key` was definitely never Add()ed; true means probably
  /// present. Thread-safe.
  bool MayContain(const std::string& key) const;

  uint64_t bit_count() const { return bit_count_; }
  int hash_count() const { return hash_count_; }

 private:
  uint64_t bit_count_;  ///< m, a multiple of 64
  int hash_count_;      ///< k
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

}  // namespace flor

#endif  // FLOR_COMMON_BLOOM_H_
