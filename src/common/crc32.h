// CRC32C (Castagnoli) used to checksum checkpoint frames (serialize/frame.h)
// and to place checkpoint keys on store shards (checkpoint/shard.h).
//
// The public entry point dispatches once, at first use, to the fastest
// implementation the host supports: the SSE4.2 crc32 instruction on x86-64,
// the ARMv8 crc32c instructions on aarch64, or a slice-by-8 software table
// walk everywhere else. All paths are validated against the RFC 3720
// reference vectors and cross-checked against the byte-at-a-time oracle;
// checkpoint payloads are megabytes, so the checksum shows up in
// materialization profiles once real tensors flow.

#ifndef FLOR_COMMON_CRC32_H_
#define FLOR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace flor {

/// Extends `crc` with `data[0, n)`. Start with `crc = 0`.
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

/// One-shot convenience.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32c(0, data, n);
}

namespace internal {

/// Reference byte-at-a-time implementation, kept as the cross-check oracle
/// for the fast paths (tests randomize inputs against it).
uint32_t Crc32cSliceBy1(uint32_t crc, const void* data, size_t n);

/// Software fast path (8 table lookups per 8 input bytes); the fallback
/// when no hardware CRC32C instruction is available.
uint32_t Crc32cSliceBy8(uint32_t crc, const void* data, size_t n);

/// True when the running CPU exposes a CRC32C instruction the build can
/// use (SSE4.2 on x86-64, the crc feature on aarch64).
bool Crc32cHardwareAvailable();

/// Hardware-instruction implementation. Precondition:
/// Crc32cHardwareAvailable(). Exposed so tests can cross-check it against
/// the oracle explicitly, independent of what the dispatcher picked.
uint32_t Crc32cHardware(uint32_t crc, const void* data, size_t n);

/// Name of the implementation the public Crc32c dispatches to:
/// "sse4.2", "armv8-crc", or "slice-by-8".
const char* Crc32cImplName();

}  // namespace internal

}  // namespace flor

#endif  // FLOR_COMMON_CRC32_H_
