// CRC32C (Castagnoli) used to checksum checkpoint frames (serialize/frame.h).
// Software implementation (slice-by-1 table); correctness over raw speed is
// fine here — checksumming is off the training thread in the Fork strategy.

#ifndef FLOR_COMMON_CRC32_H_
#define FLOR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace flor {

/// Extends `crc` with `data[0, n)`. Start with `crc = 0`.
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

/// One-shot convenience.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32c(0, data, n);
}

}  // namespace flor

#endif  // FLOR_COMMON_CRC32_H_
