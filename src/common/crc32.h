// CRC32C (Castagnoli) used to checksum checkpoint frames (serialize/frame.h).
//
// The public entry point dispatches to a slice-by-8 software implementation
// (8 bytes per table round, ~5x the byte-at-a-time loop) validated against
// the RFC 3720 reference vectors; checkpoint payloads are megabytes, so the
// checksum shows up in materialization profiles once real tensors flow.

#ifndef FLOR_COMMON_CRC32_H_
#define FLOR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace flor {

/// Extends `crc` with `data[0, n)`. Start with `crc = 0`.
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

/// One-shot convenience.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32c(0, data, n);
}

namespace internal {

/// Reference byte-at-a-time implementation, kept as the cross-check oracle
/// for the sliced fast path (tests randomize inputs against it).
uint32_t Crc32cSliceBy1(uint32_t crc, const void* data, size_t n);

}  // namespace internal

}  // namespace flor

#endif  // FLOR_COMMON_CRC32_H_
