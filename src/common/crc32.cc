#include "common/crc32.h"

#include <cstdint>
#include <cstring>

namespace flor {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // CRC32C reversed polynomial.

/// t[0] is the classic byte table; t[k][b] extends a byte through k more
/// zero bytes, which is what lets slice-by-8 fold 8 input bytes with 8
/// independent lookups per round.
struct Tables {
  uint32_t t[8][256];
};

Tables MakeTables() {
  Tables tab{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    tab.t[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tab.t[k][i] =
          tab.t[0][tab.t[k - 1][i] & 0xff] ^ (tab.t[k - 1][i] >> 8);
    }
  }
  return tab;
}

const Tables& T() {
  static const Tables tab = MakeTables();
  return tab;
}

inline uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

}  // namespace

namespace internal {

uint32_t Crc32cSliceBy1(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& t0 = T().t[0];
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) crc = t0[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return ~crc;
}

}  // namespace internal

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const Tables& tab = T();
  crc = ~crc;

  // Head: align the 8-byte rounds (also covers short inputs).
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }

  // Body: fold 8 bytes per round. The running crc is XORed into the low
  // word; each of the 8 bytes then extends through the remaining length
  // via its distance-specific table.
  while (n >= 8) {
    const uint32_t lo = LoadLE32(p) ^ crc;
    const uint32_t hi = LoadLE32(p + 4);
    crc = tab.t[7][lo & 0xff] ^ tab.t[6][(lo >> 8) & 0xff] ^
          tab.t[5][(lo >> 16) & 0xff] ^ tab.t[4][lo >> 24] ^
          tab.t[3][hi & 0xff] ^ tab.t[2][(hi >> 8) & 0xff] ^
          tab.t[1][(hi >> 16) & 0xff] ^ tab.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }

  // Tail.
  while (n > 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace flor
