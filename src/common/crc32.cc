#include "common/crc32.h"

#include <array>

namespace flor {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // CRC32C reversed polynomial.

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> t = MakeTable();
  return t;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return ~crc;
}

}  // namespace flor
