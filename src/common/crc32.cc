#include "common/crc32.h"

#include <cstdint>
#include <cstring>

// Hardware paths: compiled whenever the toolchain supports per-function
// target attributes for the needed ISA, selected at runtime only after a
// CPU check, so one binary runs correctly on hosts with and without the
// instructions.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FLOR_CRC32_HW_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define FLOR_CRC32_HW_ARM 1
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#endif

namespace flor {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // CRC32C reversed polynomial.

/// t[0] is the classic byte table; t[k][b] extends a byte through k more
/// zero bytes, which is what lets slice-by-8 fold 8 input bytes with 8
/// independent lookups per round.
struct Tables {
  uint32_t t[8][256];
};

Tables MakeTables() {
  Tables tab{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    tab.t[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tab.t[k][i] =
          tab.t[0][tab.t[k - 1][i] & 0xff] ^ (tab.t[k - 1][i] >> 8);
    }
  }
  return tab;
}

const Tables& T() {
  static const Tables tab = MakeTables();
  return tab;
}

inline uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

#if defined(FLOR_CRC32_HW_X86) || defined(FLOR_CRC32_HW_ARM)
inline uint64_t LoadLE64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap64(v);
#endif
  return v;
}
#endif

#if defined(FLOR_CRC32_HW_X86)

__attribute__((target("sse4.2"))) uint32_t
Crc32cHardwareImpl(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    crc64 = _mm_crc32_u64(crc64, LoadLE64(p));
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return ~crc;
}

bool DetectCrc32cHardware() { return __builtin_cpu_supports("sse4.2"); }
constexpr const char* kHardwareName = "sse4.2";

#elif defined(FLOR_CRC32_HW_ARM)

__attribute__((target("+crc"))) uint32_t
Crc32cHardwareImpl(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  while (n >= 8) {
    crc = __crc32cd(crc, LoadLE64(p));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  return ~crc;
}

bool DetectCrc32cHardware() {
#if defined(__ARM_FEATURE_CRC32)
  // The whole build already targets a CPU with crc; no probe needed.
  return true;
#elif defined(__linux__) && defined(HWCAP_CRC32)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  return false;  // no safe runtime probe: fall back to software
#endif
}
constexpr const char* kHardwareName = "armv8-crc";

#endif  // FLOR_CRC32_HW_*

using Crc32cFn = uint32_t (*)(uint32_t, const void*, size_t);

/// Resolved once; every caller after the first uses a plain indirect call.
Crc32cFn Dispatch() {
#if defined(FLOR_CRC32_HW_X86) || defined(FLOR_CRC32_HW_ARM)
  if (DetectCrc32cHardware()) return &Crc32cHardwareImpl;
#endif
  return &internal::Crc32cSliceBy8;
}

Crc32cFn DispatchedFn() {
  static const Crc32cFn fn = Dispatch();
  return fn;
}

}  // namespace

namespace internal {

uint32_t Crc32cSliceBy1(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& t0 = T().t[0];
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) crc = t0[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return ~crc;
}

uint32_t Crc32cSliceBy8(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const Tables& tab = T();
  crc = ~crc;

  // Head: align the 8-byte rounds (also covers short inputs).
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }

  // Body: fold 8 bytes per round. The running crc is XORed into the low
  // word; each of the 8 bytes then extends through the remaining length
  // via its distance-specific table.
  while (n >= 8) {
    const uint32_t lo = LoadLE32(p) ^ crc;
    const uint32_t hi = LoadLE32(p + 4);
    crc = tab.t[7][lo & 0xff] ^ tab.t[6][(lo >> 8) & 0xff] ^
          tab.t[5][(lo >> 16) & 0xff] ^ tab.t[4][lo >> 24] ^
          tab.t[3][hi & 0xff] ^ tab.t[2][(hi >> 8) & 0xff] ^
          tab.t[1][(hi >> 16) & 0xff] ^ tab.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }

  // Tail.
  while (n > 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

bool Crc32cHardwareAvailable() {
#if defined(FLOR_CRC32_HW_X86) || defined(FLOR_CRC32_HW_ARM)
  static const bool available = DetectCrc32cHardware();
  return available;
#else
  return false;
#endif
}

uint32_t Crc32cHardware(uint32_t crc, const void* data, size_t n) {
#if defined(FLOR_CRC32_HW_X86) || defined(FLOR_CRC32_HW_ARM)
  return Crc32cHardwareImpl(crc, data, n);
#else
  (void)crc;
  (void)data;
  (void)n;
  return 0;  // unreachable under the documented precondition
#endif
}

const char* Crc32cImplName() {
#if defined(FLOR_CRC32_HW_X86) || defined(FLOR_CRC32_HW_ARM)
  if (Crc32cHardwareAvailable()) return kHardwareName;
#endif
  return "slice-by-8";
}

}  // namespace internal

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  return DispatchedFn()(crc, data, n);
}

}  // namespace flor
