// Status / Result error handling for florcpp.
//
// Following the RocksDB / Arrow idiom from the session guides, no exceptions
// cross public API boundaries. Fallible operations return `Status` (or
// `Result<T>` when they also produce a value). `FLOR_RETURN_IF_ERROR` and
// `FLOR_ASSIGN_OR_RETURN` keep call sites compact.

#ifndef FLOR_COMMON_STATUS_H_
#define FLOR_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace flor {

/// Machine-readable category of a `Status`.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kCorruption = 6,
  kIOError = 7,
  kNotSupported = 8,
  kInternal = 9,
  kReplayAnomaly = 10,  ///< deferred correctness check failed (paper §5.2.2)
  kAborted = 11,
  kUnavailable = 12,  ///< service is draining/closed; retry elsewhere
};

/// Returns a stable human-readable name ("OK", "Corruption", ...).
const char* StatusCodeName(StatusCode code);

/// True exactly when `code` is the numeric value of a StatusCode
/// enumerator. Decoders that transport a StatusCode as an integer (e.g.
/// the process replay engine's worker error files) must validate through
/// this rather than comparing against the numerically-last enumerator, so
/// adding a code means updating only this switch — which -Wswitch keeps in
/// sync with the enum.
constexpr bool IsValidStatusCode(int64_t code) {
  if (code < 0 || code > 255) return false;
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kCorruption:
    case StatusCode::kIOError:
    case StatusCode::kNotSupported:
    case StatusCode::kInternal:
    case StatusCode::kReplayAnomaly:
    case StatusCode::kAborted:
    case StatusCode::kUnavailable:
      return true;
  }
  return false;
}

/// Outcome of a fallible operation: a code plus a context message.
///
/// `Status` is cheap to copy in the OK case (empty message) and is used
/// pervasively instead of exceptions.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ReplayAnomaly(std::string msg) {
    return Status(StatusCode::kReplayAnomaly, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsReplayAnomaly() const { return code_ == StatusCode::kReplayAnomaly; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type `T` or a non-OK `Status`.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...)`.
  Result(Status status) : v_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  /// Precondition: ok(). Accessing the value of an error result aborts.
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace flor

/// Propagates a non-OK Status to the caller.
#define FLOR_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::flor::Status _flor_st = (expr);                \
    if (!_flor_st.ok()) return _flor_st;             \
  } while (0)

#define FLOR_CONCAT_IMPL_(a, b) a##b
#define FLOR_CONCAT_(a, b) FLOR_CONCAT_IMPL_(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define FLOR_ASSIGN_OR_RETURN(lhs, expr)                            \
  FLOR_ASSIGN_OR_RETURN_IMPL_(FLOR_CONCAT_(_flor_res_, __LINE__),   \
                              lhs, expr)

#define FLOR_ASSIGN_OR_RETURN_IMPL_(res, lhs, expr)  \
  auto res = (expr);                                 \
  if (!res.ok()) return res.status();                \
  lhs = std::move(res).value();

#endif  // FLOR_COMMON_STATUS_H_
