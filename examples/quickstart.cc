// Quickstart: record a training run, then hindsight-log a value you forgot.
//
// The flow mirrors the paper's user experience:
//   1. run training under Flor record (the `import flor` analog),
//   2. realize you need a value that was never logged,
//   3. add a flor.log probe to the script and replay — Flor skips the
//      memoized training loops and produces the answer in a fraction of
//      the original runtime.
//
// Uses a real (tiny) MLP trained on synthetic data, with a simulated clock
// so the printed times correspond to a realistic training job.

#include <cstdio>

#include "common/strings.h"
#include "flor/record.h"
#include "flor/replay.h"
#include "sim/cost_model.h"
#include "workloads/programs.h"

using namespace flor;
using namespace flor::workloads;

namespace {

WorkloadProfile QuickProfile() {
  WorkloadProfile p;
  p.name = "quickstart";
  p.epochs = 20;
  p.sim_epoch_seconds = 120;  // pretend each epoch takes 2 minutes
  p.sim_outer_seconds = 5;
  p.sim_preamble_seconds = 10;
  p.sim_ckpt_raw_bytes = 64ull << 20;
  p.task_kind = data::Task::kVision;
  p.real_samples = 64;
  p.real_batch = 16;
  p.real_feature_dim = 24;
  p.real_classes = 4;
  p.real_hidden = 24;
  p.seed = 2024;
  return p;
}

}  // namespace

int main() {
  auto env = Env::NewSimEnv();
  const WorkloadProfile profile = QuickProfile();

  // ------------------------------------------------ 1. record training --
  std::printf("== Step 1: train with Flor record enabled ==\n");
  {
    auto instance = MakeWorkloadFactory(profile, kProbeNone)();
    FLOR_CHECK(instance.ok());
    RecordOptions opts = DefaultRecordOptions(profile, "runs/quickstart");
    RecordSession session(env.get(), opts);
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    std::printf("  training time: %s (vanilla would be %s, overhead %.2f%%)\n",
                HumanSeconds(result->runtime_seconds).c_str(),
                HumanSeconds(profile.VanillaSeconds()).c_str(),
                (result->runtime_seconds / profile.VanillaSeconds() - 1) *
                    100);
    std::printf("  checkpoints materialized: %lld\n",
                static_cast<long long>(result->skipblocks.materialized));
    // Show what the user logged at record time.
    int shown = 0;
    for (const auto& e : result->logs.entries()) {
      if (e.label == "test_acc" && shown++ < 3)
        std::printf("  [record] test_acc @ %s = %s\n", e.context.c_str(),
                    e.text.c_str());
    }
  }

  // ------------------------------- 2. hindsight-log the weight norm -----
  std::printf("\n== Step 2: hindsight logging — probe the weight norm ==\n");
  std::printf("  (the probe was never in the original script; no retraining"
              " happens)\n");
  {
    auto instance = MakeWorkloadFactory(profile, kProbeOuter)();
    FLOR_CHECK(instance.ok());
    ReplayOptions ropts;
    ropts.run_prefix = "runs/quickstart";
    ropts.costs = sim::PaperPlatformCosts();
    ReplaySession session(env.get(), ropts);
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    FLOR_CHECK(result.ok()) << result.status().ToString();

    std::printf("  replay latency: %s (vs %s of training) — %.0fx faster\n",
                HumanSeconds(result->runtime_seconds).c_str(),
                HumanSeconds(profile.VanillaSeconds()).c_str(),
                profile.VanillaSeconds() / result->runtime_seconds);
    std::printf("  training loops skipped via memoization: %lld of %lld\n",
                static_cast<long long>(result->skipblocks.skipped),
                static_cast<long long>(profile.epochs));
    std::printf("  deferred correctness check: %s\n",
                result->deferred.ok ? "PASSED" : "FAILED");
    std::printf("  hindsight logs produced:\n");
    for (size_t i = 0; i < result->probe_entries.size(); i += 5) {
      const auto& e = result->probe_entries[i];
      std::printf("    weight_norm @ %s = %s\n", e.context.c_str(),
                  e.text.c_str());
    }
  }

  std::printf("\nDone. See examples/alice_swa_debugging.cc for the paper's "
              "§2.1 debugging story.\n");
  return 0;
}
