// Search & cross-run queries — the paper's §8 future work, working.
//
// Part 1 (search replay): "we want to find the iteration where convergence
// begins, and look forward enough to be confident the pattern is
// permanent." Binary search over the recorded epochs, each probe a
// single-epoch sampling replay.
//
// Part 2 (queries across versions): scan a directory of record runs for the
// exploding/vanishing-gradient pattern — the paper's example of "looking
// for past Flor logs from colleagues" — using hindsight probes to obtain
// gradient magnitudes that were never logged at record time.

#include <cstdio>

#include "common/strings.h"
#include "flor/query.h"
#include "flor/record.h"
#include "flor/replay.h"
#include "flor/search.h"
#include "sim/cost_model.h"
#include "workloads/programs.h"

using namespace flor;
using namespace flor::workloads;

namespace {

WorkloadProfile DemoProfile(uint64_t seed) {
  WorkloadProfile p;
  p.name = "conv-demo";
  p.epochs = 48;
  p.sim_epoch_seconds = 180;
  p.sim_outer_seconds = 3;
  p.sim_preamble_seconds = 15;
  p.sim_ckpt_raw_bytes = 32ull << 20;
  p.task_kind = data::Task::kVision;
  p.real_samples = 64;
  p.real_batch = 16;
  p.real_feature_dim = 24;
  p.real_classes = 4;
  p.real_hidden = 20;
  p.seed = seed;
  return p;
}

}  // namespace

int main() {
  MemFileSystem fs;
  const WorkloadProfile profile = DemoProfile(91);

  std::printf("== Record a %lld-epoch run (~%s simulated) ==\n",
              static_cast<long long>(profile.epochs),
              HumanSeconds(profile.VanillaSeconds()).c_str());
  {
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance = MakeWorkloadFactory(profile, kProbeNone)();
    FLOR_CHECK(instance.ok());
    RecordOptions opts = DefaultRecordOptions(profile, "runs/conv");
    RecordSession session(&env, opts);
    exec::Frame frame;
    FLOR_CHECK(session.Run(instance->program.get(), &frame).ok());
  }

  // ---------------------------------------------------------------------
  std::printf("\n== Part 1: binary-search the past for convergence ==\n");
  std::printf("  question: first epoch where the mean per-batch loss drops "
              "below 0.05\n");
  {
    Env env(std::make_unique<SimClock>(), &fs);
    SearchOptions opts;
    opts.run_prefix = "runs/conv";
    opts.confirm_epochs = 2;  // "look forward enough to be confident"
    opts.costs = sim::PaperPlatformCosts();
    auto factory = MakeWorkloadFactory(profile, kProbeInner);
    auto result = SearchReplay(
        &env, factory,
        [](int64_t, const std::vector<exec::LogEntry>& entries)
            -> Result<bool> {
          double sum = 0;
          int n = 0;
          for (const auto& e : entries) {
            if (e.label != "loss") continue;
            sum += std::strtod(e.text.c_str(), nullptr);
            ++n;
          }
          if (n == 0) return Status::Internal("no loss entries in epoch");
          return sum / n < 0.05;
        },
        opts);
    FLOR_CHECK(result.ok()) << result.status().ToString();

    std::printf("  convergence begins at epoch %lld (confirmed over the "
                "next 2 epochs: %s)\n",
                static_cast<long long>(result->found_epoch),
                result->confirmed ? "yes" : "no");
    std::printf("  probe schedule (%zu single-epoch replays vs %lld-epoch "
                "full scan):",
                result->probed_epochs.size(),
                static_cast<long long>(profile.epochs));
    for (int64_t e : result->probed_epochs)
      std::printf(" %lld", static_cast<long long>(e));
    std::printf("\n  total probe latency: %s (full re-execution would be "
                "%s)\n",
                HumanSeconds(result->total_latency_seconds).c_str(),
                HumanSeconds(profile.VanillaSeconds()).c_str());
  }

  // ---------------------------------------------------------------------
  std::printf("\n== Part 2: query a fleet of past runs for the "
              "exploding/vanishing pattern ==\n");
  // Record two more "colleagues'" runs with different seeds.
  for (uint64_t seed : {92, 93}) {
    WorkloadProfile colleague = DemoProfile(seed);
    colleague.epochs = 12;
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance = MakeWorkloadFactory(colleague, kProbeNone)();
    FLOR_CHECK(instance.ok());
    RecordOptions opts = DefaultRecordOptions(
        colleague, StrCat("runs/colleague", seed));
    RecordSession session(&env, opts);
    exec::Frame frame;
    FLOR_CHECK(session.Run(instance->program.get(), &frame).ok());
  }

  auto runs = ListRuns(&fs, "runs");
  FLOR_CHECK(runs.ok());
  std::printf("  discovered %zu record runs under runs/\n", runs->size());
  for (const auto& run : *runs) {
    // The gradient magnitudes were never logged at record time — obtain
    // them by hindsight replay, then test the pattern.
    WorkloadProfile p = DemoProfile(91);
    if (run.prefix == "runs/colleague92") p = DemoProfile(92);
    if (run.prefix == "runs/colleague93") p = DemoProfile(93);
    if (run.prefix != "runs/conv") p.epochs = 12;

    Env env(std::make_unique<SimClock>(), &fs);
    auto instance = MakeWorkloadFactory(p, kProbeInner)();
    FLOR_CHECK(instance.ok());
    ReplayOptions ropts;
    ropts.run_prefix = run.prefix;
    // Sample a handful of epochs: enough to see the shape cheaply.
    for (int64_t e = 0; e < p.epochs; e += std::max<int64_t>(1, p.epochs / 6))
      ropts.sample_epochs.push_back(e);
    ropts.costs = sim::PaperPlatformCosts();
    ReplaySession session(&env, ropts);
    exec::Frame frame;
    auto rr = session.Run(instance->program.get(), &frame);
    FLOR_CHECK(rr.ok()) << rr.status().ToString();
    FLOR_CHECK(rr->deferred.ok);

    std::vector<double> grads;
    for (const auto& e : rr->probe_entries)
      if (e.label == "grad_norm")
        grads.push_back(std::strtod(e.text.c_str(), nullptr));
    const bool pattern = ShowsExplodingVanishingPattern(grads);
    std::printf("  %-18s workload=%-10s grad samples=%zu  "
                "exploding/vanishing: %s\n",
                run.prefix.c_str(), run.workload.c_str(), grads.size(),
                pattern ? "YES" : "no");
  }
  std::printf("\n(The healthy runs above report 'no'; the detector and the "
              "probe machinery are\nexercised adversarially in "
              "tests/search_query_test.cc.)\n");
  return 0;
}
