// Alice's debugging story (paper §2.1), replayed with hindsight logging.
//
// Alice adds stochastic weight averaging (a cyclic LR schedule with high
// bounds) to a working training script, and the model collapses. In the
// paper's telling she re-runs the hour-long job twice with ever more
// logging; with Flor she records once, then *probes the past*:
//
//   1. record: train the SWA variant; only the loss is logged;
//   2. hindsight: add grad/weight-magnitude probes and replay — Flor
//      re-executes only what the probes need;
//   3. diagnosis: gradient magnitudes explode before the weights shrink —
//      over-regularization (high LR bounds fighting weight decay);
//   4. fix: disable weight decay, retrain, accuracy recovers.
//
// This example builds the training script directly with the public
// ProgramBuilder API (no workload library), which is what a user embedding
// florcpp in their own system would do.

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/strings.h"
#include "data/loader.h"
#include "flor/record.h"
#include "flor/replay.h"
#include "sim/cost_model.h"
#include "ir/builder.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/scheduler.h"
#include "tensor/ops.h"

using namespace flor;
using exec::Frame;

namespace {

struct AliceContext {
  Rng rng{7777};
  std::unique_ptr<data::SyntheticDataset> trainset;
  std::unique_ptr<data::DataLoader> loader;
  std::unique_ptr<data::SyntheticDataset> testset;
  std::unique_ptr<nn::Module> net;
  std::unique_ptr<nn::Optimizer> optimizer;
  std::unique_ptr<nn::LrScheduler> scheduler;
};

constexpr int64_t kEpochs = 12;

float GradNorm(nn::Module* net) {
  double acc = 0;
  for (auto* p : net->Parameters()) {
    const float n = ops::L2Norm(p->grad);
    acc += static_cast<double>(n) * n;
  }
  return static_cast<float>(std::sqrt(acc));
}

float WeightNorm(nn::Module* net) {
  double acc = 0;
  for (auto* p : net->Parameters()) {
    const float n = ops::L2Norm(p->value);
    acc += static_cast<double>(n) * n;
  }
  return static_cast<float>(std::sqrt(acc));
}

/// Builds Alice's SWA training script. `weight_decay` is the knob her
/// diagnosis eventually turns off; `probes` adds the hindsight logging
/// statements (absent at record time).
Result<ProgramInstance> AliceScript(float weight_decay, float max_lr,
                                    bool probes) {
  auto ctx = std::make_shared<AliceContext>();
  ir::ProgramBuilder b;

  b.CallAssign({"trainloader"}, "make_loader", {}, [ctx](Frame* f) {
     data::SyntheticDataset::Config cfg;
     cfg.num_samples = 96;
     cfg.feature_dim = 24;
     cfg.num_classes = 4;
     cfg.seed = 31337;
     ctx->trainset = std::make_unique<data::SyntheticDataset>(cfg);
     ctx->loader =
         std::make_unique<data::DataLoader>(ctx->trainset.get(), 16);
     cfg.seed = 31338;
     cfg.num_samples = 48;
     ctx->testset = std::make_unique<data::SyntheticDataset>(cfg);
     f->Set("trainloader", ir::Value::LoaderRef(ctx->loader.get()));
     return Status::OK();
   }).Cost(60);  // "one hour of training" scale: pretend loading takes 1min

  b.CallAssign({"num_batches"}, "len", {"trainloader"}, [ctx](Frame* f) {
    f->Set("num_batches", ir::Value::Int(ctx->loader->batches_per_epoch()));
    return Status::OK();
  });

  b.CallAssign({"net"}, "build_resnet18", {}, [ctx](Frame* f) {
    ctx->net = nn::BuildMlp("resnet18", {24, 32, 32, 4}, &ctx->rng);
    f->Set("net", ir::Value::ModuleRef(ctx->net.get()));
    return Status::OK();
  });

  b.CallAssign({"optimizer"}, "make_sgd", {"net"},
               [ctx, weight_decay](Frame* f) {
                 ctx->optimizer = std::make_unique<nn::Sgd>(
                     ctx->net.get(), /*lr=*/0.05f, /*momentum=*/0.9f,
                     weight_decay);
                 f->Set("optimizer",
                        ir::Value::OptimizerRef(ctx->optimizer.get()));
                 return Status::OK();
               });

  // SWA's cyclical schedule with "higher than usual learning rate bounds".
  b.CallAssign({"scheduler"}, "make_swa_schedule", {"optimizer"},
               [ctx, max_lr](Frame* f) {
                 ctx->scheduler = std::make_unique<nn::CyclicLr>(
                     ctx->optimizer.get(), max_lr, /*cycle_len=*/4);
                 f->Set("scheduler",
                        ir::Value::SchedulerRef(ctx->scheduler.get()));
                 return Status::OK();
               });

  b.BeginLoop("e", kEpochs);
  {
    b.BeginLoopVar("i", "num_batches");
    {
      b.MethodCall("optimizer", "zero_grad", {}, [ctx](Frame*) {
        ctx->net->ZeroGrad();
        return Status::OK();
      });
      b.CallAssign({"batch", "labels"}, "fetch_batch",
                   {"trainloader", "e", "i"}, [ctx](Frame* f) {
                     FLOR_ASSIGN_OR_RETURN(
                         data::Batch batch,
                         ctx->loader->GetBatch(f->At("e").AsInt(),
                                               f->At("i").AsInt()));
                     f->Set("batch", ir::Value::FromTensor(batch.features));
                     f->Set("labels", ir::Value::FromTensor(batch.labels));
                     return Status::OK();
                   });
      b.CallAssign({"preds"}, "forward", {"net", "batch"}, [ctx](Frame* f) {
         FLOR_ASSIGN_OR_RETURN(
             Tensor preds, ctx->net->Forward(f->At("batch").AsTensor()));
         f->Set("preds", ir::Value::FromTensor(std::move(preds)));
         return Status::OK();
       }).Cost(300.0 / 6);  // one epoch ≈ 5 simulated minutes
      b.CallAssign({"loss", "grad"}, "criterion", {"preds", "labels"},
                   [](Frame* f) {
                     FLOR_ASSIGN_OR_RETURN(
                         nn::LossResult lr,
                         nn::SoftmaxCrossEntropy(f->At("preds").AsTensor(),
                                                 f->At("labels").AsTensor()));
                     f->Set("loss", ir::Value::Float(lr.loss));
                     f->Set("grad",
                            ir::Value::FromTensor(std::move(lr.grad_logits)));
                     return Status::OK();
                   });
      b.MethodCall("grad", "backward", {"net"}, [ctx](Frame* f) {
        FLOR_ASSIGN_OR_RETURN(Tensor unused,
                              ctx->net->Backward(f->At("grad").AsTensor()));
        (void)unused;
        return Status::OK();
      });
      b.MethodCall("optimizer", "step", {}, [ctx](Frame*) {
        return ctx->optimizer->Step();
      });
      b.Log("loss",
            [](Frame* f) {
              return StrFormat("%.4f", f->At("loss").AsFloat());
            },
            {"loss"});
      if (probes) {
        // The hindsight probes: "recover the magnitudes of the weights and
        // gradients over time" (paper §2.1).
        b.Log("grad_magnitude",
              [ctx](Frame*) { return StrFormat("%.3f", GradNorm(ctx->net.get())); },
              {"net"});
        b.Log("weight_magnitude",
              [ctx](Frame*) {
                return StrFormat("%.3f", WeightNorm(ctx->net.get()));
              },
              {"net"});
      }
    }
    b.EndLoop();
    b.MethodCall("scheduler", "step", {}, [ctx](Frame*) {
      ctx->scheduler->Step();
      return Status::OK();
    });
    b.CallAssign({"test_acc"}, "evaluate", {"net", "e"},
                 [ctx](Frame* f) {
                   auto feats = ctx->testset->BatchFeatures(0, 48);
                   auto labels = ctx->testset->BatchLabels(0, 48);
                   FLOR_ASSIGN_OR_RETURN(Tensor logits,
                                         ctx->net->Forward(*feats));
                   FLOR_ASSIGN_OR_RETURN(float acc,
                                         ops::Accuracy(logits, *labels));
                   f->Set("test_acc", ir::Value::Float(acc));
                   return Status::OK();
                 })
      .Cost(10);
    b.Log("test_acc",
          [](Frame* f) {
            return StrFormat("%.4f", f->At("test_acc").AsFloat());
          },
          {"test_acc"});
    b.OpaqueCall("save_checkpoint", {"net"},
                 [](Frame*) { return Status::OK(); });
  }
  b.EndLoop();

  ProgramInstance instance;
  instance.program = b.Build();
  instance.context = ctx;
  return instance;
}

float FinalTestAcc(const exec::LogStream& logs) {
  float acc = 0;
  for (const auto& e : logs.entries())
    if (e.label == "test_acc") acc = std::strtof(e.text.c_str(), nullptr);
  return acc;
}

}  // namespace

int main() {
  // The buggy configuration: SWA's high LR bounds + weight decay.
  constexpr float kBuggyWeightDecay = 0.10f;
  constexpr float kSwaMaxLr = 0.60f;

  auto env = Env::NewSimEnv();

  std::printf("== Alice trains the SWA variant (recorded by Flor) ==\n");
  float buggy_acc = 0;
  {
    auto instance = AliceScript(kBuggyWeightDecay, kSwaMaxLr, false);
    FLOR_CHECK(instance.ok());
    RecordOptions opts;
    opts.run_prefix = "runs/alice_swa";
    opts.workload = "alice-swa";
    opts.materializer.costs = sim::PaperPlatformCosts();
    opts.nominal_checkpoint_bytes = 64ull << 20;
    RecordSession session(env.get(), opts);
    Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    buggy_acc = FinalTestAcc(result->logs);
    std::printf("  training took %s; final test accuracy: %.2f%% — "
                "far below the healthy baseline!\n",
                HumanSeconds(result->runtime_seconds).c_str(),
                buggy_acc * 100);
  }

  std::printf("\n== Hindsight logging: probe gradient & weight magnitudes "
              "==\n");
  std::printf("  (in the paper Alice re-ran the full hour; here replay "
              "answers from the past)\n");
  {
    auto instance = AliceScript(kBuggyWeightDecay, kSwaMaxLr, true);
    FLOR_CHECK(instance.ok());
    ReplayOptions ropts;
    ropts.run_prefix = "runs/alice_swa";
    ropts.sample_epochs = {0, 3, 6, 9, 11};  // sampling replay (paper §8)
    ropts.costs = sim::PaperPlatformCosts();
    ReplaySession session(env.get(), ropts);
    Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok)
        << "replay anomaly: " << result->deferred.anomalies[0];
    std::printf("  replay latency: %s; deferred checks passed\n",
                HumanSeconds(result->runtime_seconds).c_str());

    std::printf("\n  epoch   grad |g|     weight |w|   (last batch of each "
                "sampled epoch)\n");
    std::string last_ctx;
    std::string grad, weight;
    for (const auto& e : result->probe_entries) {
      if (e.label == "grad_magnitude") grad = e.text;
      if (e.label == "weight_magnitude") {
        weight = e.text;
        last_ctx = e.context;
        if (e.context.find("/i=5") != std::string::npos) {
          std::printf("  %-7s %-12s %-12s\n",
                      e.context.substr(0, e.context.find('/')).c_str(),
                      grad.c_str(), weight.c_str());
        }
      }
    }
    std::printf("\n  Diagnosis: gradient magnitudes track the weight "
                "magnitudes and blow up when\n  the cyclic LR peaks, while "
                "heavy weight decay fights back — the opposing,\n  "
                "over-compensatory forces of over-regularization "
                "(paper §2.1).\n");
  }

  std::printf("\n== The fix: disable weight decay and retrain ==\n");
  {
    auto instance = AliceScript(0.0f, kSwaMaxLr * 0.25f, false);
    FLOR_CHECK(instance.ok());
    RecordOptions opts;
    opts.run_prefix = "runs/alice_fixed";
    opts.workload = "alice-fixed";
    opts.nominal_checkpoint_bytes = 64ull << 20;
    RecordSession session(env.get(), opts);
    Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    FLOR_CHECK(result.ok());
    const float fixed_acc = FinalTestAcc(result->logs);
    std::printf("  final test accuracy: %.2f%% (was %.2f%% with the bug)\n",
                fixed_acc * 100, buggy_acc * 100);
    FLOR_CHECK(fixed_acc > buggy_acc) << "the fix should help";
  }
  return 0;
}
