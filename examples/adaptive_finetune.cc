// Adaptive checkpointing on a fine-tuning workload (paper §5.3, Fig. 7).
//
// RTE fine-tunes RoBERTa: epochs are short (~11 s) but each Loop End
// Checkpoint is ~3.8 GB raw (model + Adam moments), so materializing every
// epoch would nearly double the runtime. The Joint Invariant (Eq. 4) keeps
// record under the 6.67% tolerance by checkpointing sparsely — and the
// sparse checkpoints then bound how far replay can parallelize (Fig. 10).

#include <cstdio>

#include "common/strings.h"
#include "flor/record.h"
#include "sim/parallel_replay.h"
#include "workloads/programs.h"

using namespace flor;
using namespace flor::workloads;

int main() {
  auto profile_or = WorkloadByName("RTE");
  FLOR_CHECK(profile_or.ok());
  const WorkloadProfile& profile = *profile_or;
  const double vanilla = profile.VanillaSeconds();

  std::printf("RTE fine-tuning: %lld epochs x %s compute, %s raw checkpoint"
              " per epoch\nvanilla runtime: %s\n\n",
              static_cast<long long>(profile.epochs),
              HumanSeconds(profile.sim_epoch_seconds).c_str(),
              HumanBytes(profile.sim_ckpt_raw_bytes).c_str(),
              HumanSeconds(vanilla).c_str());

  MemFileSystem fs_adaptive;
  MemFileSystem fs_disabled;
  for (bool adaptive : {false, true}) {
    MemFileSystem* fs = adaptive ? &fs_adaptive : &fs_disabled;
    Env env(std::make_unique<SimClock>(), fs);
    auto instance = MakeWorkloadFactory(profile, kProbeNone)();
    FLOR_CHECK(instance.ok());
    RecordOptions opts = DefaultRecordOptions(profile, "runs/rte");
    opts.adaptive.enabled = adaptive;
    RecordSession session(&env, opts);
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    FLOR_CHECK(result.ok()) << result.status().ToString();

    std::printf("== adaptive checkpointing %s ==\n",
                adaptive ? "ON" : "OFF");
    std::printf("  record runtime: %s (overhead %.1f%%)\n",
                HumanSeconds(result->runtime_seconds).c_str(),
                (result->runtime_seconds / vanilla - 1) * 100);
    std::printf("  checkpoints: %lld; training-thread stall: %s\n",
                static_cast<long long>(result->skipblocks.materialized),
                HumanSeconds(result->materialize_stall_seconds).c_str());
    if (adaptive) {
      std::printf("  checkpointed epochs:");
      for (const auto& rec : result->manifest.records)
        std::printf(" %lld", static_cast<long long>(rec.epoch));
      std::printf("\n  (the Joint Invariant admits a checkpoint roughly "
                  "every 1/eps * Mi/Ci epochs)\n");
    }
    std::printf("\n");
  }

  std::printf("== consequence for replay: sparse checkpoints bound "
              "parallelism ==\n");
  auto factory = MakeWorkloadFactory(profile, kProbeInner);
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "runs/rte";
  copts.cluster.num_machines = 1;  // 4 GPUs
  copts.costs = sim::PaperPlatformCosts();
  auto result = sim::ClusterReplay(factory, &fs_adaptive, copts);
  FLOR_CHECK(result.ok()) << result.status().ToString();
  FLOR_CHECK(result->deferred.ok);
  std::printf("  partitions available: %lld (from the sparse checkpoints)\n",
              static_cast<long long>(result->partition_segments));
  std::printf("  replay on 4 GPUs: %s = %.0f%% of vanilla "
              "(paper: at best 2/6 = 33%%)\n",
              HumanSeconds(result->latency_seconds).c_str(),
              result->latency_seconds / vanilla * 100);
  std::printf("  initialization mode: %s (strong unavailable on sparse "
              "checkpoints, §5.4.2)\n",
              InitModeName(result->effective_init));
  return 0;
}
