// Hindsight parallelism on a simulated GPU cluster (paper §5.4, Figs. 13/14).
//
// Records the RsNt workload (200 epochs of ResNet-152-scale training), then
// replays an inner-loop probe — which needs a full re-execution — on 1 to 4
// four-GPU machines. Workers are coordination-free; scaling is near-ideal up
// to the 200/⌈200/G⌉ load-balancing ceiling, and the dollar cost stays
// almost flat while wall-clock time collapses.

#include <cstdio>

#include "common/strings.h"
#include "flor/record.h"
#include "sim/parallel_replay.h"
#include "workloads/programs.h"

using namespace flor;
using namespace flor::workloads;

int main() {
  auto profile_or = WorkloadByName("RsNt");
  FLOR_CHECK(profile_or.ok());
  const WorkloadProfile& profile = *profile_or;

  MemFileSystem fs;
  std::printf("== Recording %s (%lld epochs, ~%s of simulated training) "
              "==\n",
              profile.name.c_str(), static_cast<long long>(profile.epochs),
              HumanSeconds(profile.VanillaSeconds()).c_str());
  {
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance = MakeWorkloadFactory(profile, kProbeNone)();
    FLOR_CHECK(instance.ok());
    RecordOptions opts = DefaultRecordOptions(profile, "runs/rsnt");
    RecordSession session(&env, opts);
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    std::printf("  record overhead: %.2f%%, %lld checkpoints\n",
                (result->runtime_seconds / profile.VanillaSeconds() - 1) *
                    100,
                static_cast<long long>(result->skipblocks.materialized));
  }

  std::printf("\n== Hindsight probe inside the training loop: full "
              "re-execution needed ==\n\n");
  std::printf("%9s %6s %12s %9s %14s %12s\n", "machines", "GPUs", "latency",
              "speedup", "probe lines", "cluster $");

  auto factory = MakeWorkloadFactory(profile, kProbeInner);
  const double vanilla = profile.VanillaSeconds();
  for (int machines = 1; machines <= 4; ++machines) {
    sim::ClusterReplayOptions copts;
    copts.run_prefix = "runs/rsnt";
    copts.cluster.num_machines = machines;
    copts.cluster.instance = sim::kP3_8xLarge;
    copts.init_mode = InitMode::kWeak;
    copts.costs = sim::PaperPlatformCosts();
    auto result = sim::ClusterReplay(factory, &fs, copts);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok)
        << "replay anomaly: " << result->deferred.anomalies[0];
    std::printf("%9d %6d %12s %8.2fx %14zu %12s\n", machines, machines * 4,
                HumanSeconds(result->latency_seconds).c_str(),
                vanilla / result->latency_seconds,
                result->probe_entries.size(),
                HumanDollars(result->total_cost_dollars).c_str());
  }

  std::printf("\nEvery row produced the identical merged hindsight log and "
              "passed the\ndeferred record-vs-replay check — workers never "
              "communicate (paper §5.4.3).\n");
  return 0;
}
